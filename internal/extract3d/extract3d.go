// Package extract3d implements a three-dimensional boundary-element
// capacitance extractor — the same formulation as FastCap's constant-
// collocation mode, which is the tool the paper actually ran (Sec. 3.2.1).
// The 2-D extractor (package extract) captures the per-unit-length
// behaviour of infinitely long wires; this 3-D solver adds the finite-
// length fringe and end effects that raise non-adjacent coupling toward
// the paper's reported shares.
//
// Conductors are axis-aligned boxes whose faces are subdivided into
// rectangular panels carrying uniform surface charge. The potential
// coefficient between a collocation point and a panel uses the exact
// closed-form integral of 1/r over a rectangle. An optional grounded
// plane at z = 0 is enforced with image panels. Solving P q = v for unit
// conductor potentials yields the Maxwell capacitance matrix in farads.
package extract3d

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/linalg"
	"nanobus/internal/units"
)

// Box is an axis-aligned conductor.
type Box struct {
	Name       string
	X0, Y0, Z0 float64
	X1, Y1, Z1 float64
}

// Validate checks the box's extents.
func (b Box) Validate() error {
	if b.X1 <= b.X0 || b.Y1 <= b.Y0 || b.Z1 <= b.Z0 {
		return fmt.Errorf("extract3d: box %q has non-positive extent", b.Name)
	}
	return nil
}

// Options tune the discretisation.
type Options struct {
	// TargetPanels aims for roughly this many panels per conductor;
	// zero means 150. Cost grows as the cube of the total panel count
	// (dense LU).
	TargetPanels int
	// GroundPlane enforces a grounded plane at z = 0 via image charges.
	// Boxes must then lie strictly above it.
	GroundPlane bool
}

func (o Options) targetPanels() int {
	if o.TargetPanels <= 0 {
		return 150
	}
	return o.TargetPanels
}

// Result is the extraction output.
type Result struct {
	Names []string
	// Maxwell is the short-circuit capacitance matrix in farads.
	Maxwell *linalg.Matrix
	// Panels is the boundary-element count.
	Panels int
}

// Coupling returns the (positive) coupling capacitance between conductors
// i and j in farads.
func (r *Result) Coupling(i, j int) float64 {
	if i == j {
		return 0
	}
	return -0.5 * (r.Maxwell.At(i, j) + r.Maxwell.At(j, i))
}

// SelfToGround returns conductor i's capacitance to ground (row sum).
func (r *Result) SelfToGround(i int) float64 {
	s := 0.0
	for j := 0; j < r.Maxwell.Cols(); j++ {
		s += r.Maxwell.At(i, j)
	}
	return s
}

// panel is one rectangular boundary element on a box face.
type panel struct {
	// center is the collocation point.
	cx, cy, cz float64
	// axis selects the face normal: 0=x, 1=y, 2=z. u and v are the two
	// in-plane axes (the remaining coordinates in ascending order).
	axis int
	// hu, hv are the half-extents along the in-plane axes.
	hu, hv float64
	// conductor index.
	cond int
}

func (p panel) area() float64 { return 4 * p.hu * p.hv }

// Extract runs the solver.
func Extract(boxes []Box, epsRel float64, opts Options) (*Result, error) {
	if len(boxes) == 0 {
		return nil, fmt.Errorf("extract3d: no conductors")
	}
	if epsRel < 1 {
		return nil, fmt.Errorf("extract3d: relative permittivity %g < 1", epsRel)
	}
	var panels []panel
	names := make([]string, len(boxes))
	for ci, b := range boxes {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if opts.GroundPlane && b.Z0 <= 0 {
			return nil, fmt.Errorf("extract3d: box %q touches or crosses the ground plane", b.Name)
		}
		names[ci] = b.Name
		panels = append(panels, panelizeBox(b, ci, opts.targetPanels())...)
	}
	n := len(panels)
	if n > 6000 {
		return nil, fmt.Errorf("extract3d: %d panels exceed the dense-solver budget; lower TargetPanels", n)
	}
	eps := epsRel * units.Eps0

	p, err := linalg.NewMatrix(n, n)
	if err != nil {
		return nil, fmt.Errorf("extract3d: potential matrix: %w", err)
	}
	for i := 0; i < n; i++ {
		oi := panels[i]
		row := p.Row(i)
		for j := 0; j < n; j++ {
			pj := panels[j]
			v := panelPotential(oi.cx, oi.cy, oi.cz, pj)
			if opts.GroundPlane {
				v -= panelPotential(oi.cx, oi.cy, oi.cz, mirror(pj))
			}
			// Uniform charge density q_j/A_j; fold the area so the
			// unknowns are total panel charges.
			row[j] = v / (4 * math.Pi * eps * pj.area())
		}
	}
	lu, err := linalg.FactorLU(p)
	if err != nil {
		return nil, fmt.Errorf("extract3d: factorisation: %w", err)
	}
	nc := len(boxes)
	maxwell, err := linalg.NewMatrix(nc, nc)
	if err != nil {
		return nil, fmt.Errorf("extract3d: maxwell matrix: %w", err)
	}
	rhs := make([]float64, n)
	for k := 0; k < nc; k++ {
		for i := range rhs {
			if panels[i].cond == k {
				rhs[i] = 1
			} else {
				rhs[i] = 0
			}
		}
		q, err := lu.Solve(rhs)
		if err != nil {
			return nil, fmt.Errorf("extract3d: solve for conductor %d: %w", k, err)
		}
		for i, pl := range panels {
			maxwell.Add(pl.cond, k, q[i])
		}
	}
	return &Result{Names: names, Maxwell: maxwell, Panels: n}, nil
}

// mirror reflects a panel through the z = 0 plane.
func mirror(p panel) panel {
	p.cz = -p.cz
	return p
}

// panelizeBox subdivides the six faces, scaling each face's grid with its
// aspect so panels stay near-square, budgeting ~target panels total.
func panelizeBox(b Box, cond, target int) []panel {
	dx := b.X1 - b.X0
	dy := b.Y1 - b.Y0
	dz := b.Z1 - b.Z0
	area := 2 * (dx*dy + dy*dz + dx*dz)
	// Panel edge length that would yield ~target square panels.
	h := math.Sqrt(area / float64(target))
	var out []panel
	grid := func(d float64) int {
		n := int(math.Ceil(d / h))
		if n < 1 {
			n = 1
		}
		if n > 64 {
			n = 64
		}
		return n
	}
	// Faces normal to x at X0 and X1 (in-plane: y, z), etc.
	addFace := func(axis int, coord float64, u0, u1, v0, v1 float64) {
		nu, nv := grid(u1-u0), grid(v1-v0)
		du := (u1 - u0) / float64(nu)
		dv := (v1 - v0) / float64(nv)
		for iu := 0; iu < nu; iu++ {
			for iv := 0; iv < nv; iv++ {
				uc := u0 + (float64(iu)+0.5)*du
				vc := v0 + (float64(iv)+0.5)*dv
				pl := panel{axis: axis, hu: du / 2, hv: dv / 2, cond: cond}
				switch axis {
				case 0:
					pl.cx, pl.cy, pl.cz = coord, uc, vc
				case 1:
					pl.cx, pl.cy, pl.cz = uc, coord, vc
				default:
					pl.cx, pl.cy, pl.cz = uc, vc, coord
				}
				out = append(out, pl)
			}
		}
	}
	addFace(0, b.X0, b.Y0, b.Y1, b.Z0, b.Z1)
	addFace(0, b.X1, b.Y0, b.Y1, b.Z0, b.Z1)
	addFace(1, b.Y0, b.X0, b.X1, b.Z0, b.Z1)
	addFace(1, b.Y1, b.X0, b.X1, b.Z0, b.Z1)
	addFace(2, b.Z0, b.X0, b.X1, b.Y0, b.Y1)
	addFace(2, b.Z1, b.X0, b.X1, b.Y0, b.Y1)
	return out
}

// panelPotential returns the integral of 1/r over the panel as seen from
// the observation point (x, y, z) — up to the 1/(4*pi*eps) factor applied
// by the caller. The closed form for a rectangle [u1,u2]x[v1,v2] at
// perpendicular distance w uses the antiderivative
//
//	F(u, v) = u*ln(v+r) + v*ln(u+r) - w*atan2(u*v, w*r),  r = |(u,v,w)|
//
// evaluated at the four corners with alternating signs.
func panelPotential(x, y, z float64, p panel) float64 {
	// Transform the observation point into the panel's local (u, v, w)
	// frame.
	var u, v, w float64
	switch p.axis {
	case 0:
		w = x - p.cx
		u = y - p.cy
		v = z - p.cz
	case 1:
		w = y - p.cy
		u = x - p.cx
		v = z - p.cz
	default:
		w = z - p.cz
		u = x - p.cx
		v = y - p.cy
	}
	u1, u2 := -p.hu-u, p.hu-u
	v1, v2 := -p.hv-v, p.hv-v
	return rectF(u2, v2, w) - rectF(u1, v2, w) - rectF(u2, v1, w) + rectF(u1, v1, w)
}

func rectF(u, v, w float64) float64 {
	r := math.Sqrt(u*u + v*v + w*w)
	const tiny = 1e-300
	t1 := 0.0
	if a := v + r; a > tiny {
		t1 = u * math.Log(a)
	} else if u != 0 { //nanolint:ignore floateq an exactly zero u makes the u*ln term vanish in the limit
		// v+r ~ 0 only when w=0 and v<0 and u->0; the limit of u*ln is 0
		// unless u stays finite, where the principal value uses |...|.
		t1 = u * math.Log(tiny)
	}
	t2 := 0.0
	if a := u + r; a > tiny {
		t2 = v * math.Log(a)
	} else if v != 0 { //nanolint:ignore floateq an exactly zero v makes the v*ln term vanish in the limit
		t2 = v * math.Log(tiny)
	}
	t3 := 0.0
	if w != 0 { //nanolint:ignore floateq the w = 0 limit of the atan term is exactly 0
		// The term w*atan(uv/(w*r)) is even in w; using |w| keeps atan2's
		// second argument positive so it coincides with atan.
		aw := math.Abs(w)
		t3 = aw * math.Atan2(u*v, aw*r)
	}
	return t1 + t2 - t3
}

// BusBoxes lays out a coplanar bus of the node's geometry with the given
// finite wire length (meters), bottom faces at the ILD height (for use
// with GroundPlane).
func BusBoxes(node itrs.Node, wires int, length float64) []Box {
	w := node.WireWidth
	s := node.Spacing()
	t := node.WireThickness
	h := node.ILDHeight
	total := float64(wires)*w + float64(wires-1)*s
	x0 := -total / 2
	out := make([]Box, wires)
	for i := 0; i < wires; i++ {
		xl := x0 + float64(i)*(w+s)
		out[i] = Box{
			Name: fmt.Sprintf("w%d", i),
			X0:   xl, X1: xl + w,
			Y0: -length / 2, Y1: length / 2,
			Z0: h, Z1: h + t,
		}
	}
	return out
}

package extract3d

import (
	"math"
	"testing"

	"nanobus/internal/extract"
	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// TestUnitCubeCapacitance validates against the classic numerical result:
// the free-space capacitance of a unit cube is 0.6607 * 4*pi*eps0*a
// (~73.5 pF for a 1 m cube).
func TestUnitCubeCapacitance(t *testing.T) {
	cube := Box{Name: "cube", X0: 0, Y0: 0, Z0: 0, X1: 1, Y1: 1, Z1: 1}
	res, err := Extract([]Box{cube}, 1.0, Options{TargetPanels: 600})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Maxwell.At(0, 0)
	want := 0.6607 * 4 * math.Pi * units.Eps0
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Errorf("cube capacitance = %.4g F, literature %.4g F (rel err %.3f)", got, want, rel)
	}
}

// TestSquarePlate validates the thin-square-plate limit (~40.7 pF per
// meter of side length).
func TestSquarePlate(t *testing.T) {
	plate := Box{Name: "plate", X0: 0, Y0: 0, Z0: 0, X1: 1, Y1: 1, Z1: 0.001}
	res, err := Extract([]Box{plate}, 1.0, Options{TargetPanels: 500})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Maxwell.At(0, 0)
	want := 40.7e-12
	if rel := math.Abs(got-want) / want; rel > 0.06 {
		t.Errorf("plate capacitance = %.4g F, literature %.4g F (rel err %.3f)", got, want, rel)
	}
}

// TestParallelPlates: two large plates at small separation approach
// eps*A/d (always exceeding it, by the fringe field).
func TestParallelPlates(t *testing.T) {
	const a, d = 1.0, 0.05
	bottom := Box{Name: "b", X0: 0, Y0: 0, Z0: 0, X1: a, Y1: a, Z1: 0.001}
	top := Box{Name: "t", X0: 0, Y0: 0, Z0: d, X1: a, Y1: a, Z1: d + 0.001}
	res, err := Extract([]Box{bottom, top}, 1.0, Options{TargetPanels: 400})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Coupling(0, 1)
	ideal := units.Eps0 * a * a / d
	if c < ideal {
		t.Errorf("plate coupling %.4g F below ideal %.4g F", c, ideal)
	}
	if c > 1.5*ideal {
		t.Errorf("plate coupling %.4g F too far above ideal %.4g F", c, ideal)
	}
}

// TestGroundPlaneImage: a conductor over the ground plane gains
// capacitance relative to free space (its image doubles the field), and
// the plane must be respected.
func TestGroundPlaneImage(t *testing.T) {
	cube := Box{Name: "c", X0: 0, Y0: 0, Z0: 0.2, X1: 1, Y1: 1, Z1: 1.2}
	free, err := Extract([]Box{cube}, 1.0, Options{TargetPanels: 300})
	if err != nil {
		t.Fatal(err)
	}
	grounded, err := Extract([]Box{cube}, 1.0, Options{TargetPanels: 300, GroundPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	if grounded.Maxwell.At(0, 0) <= free.Maxwell.At(0, 0) {
		t.Errorf("ground plane did not raise capacitance: %g vs %g",
			grounded.Maxwell.At(0, 0), free.Maxwell.At(0, 0))
	}
	below := Box{Name: "bad", X0: 0, Y0: 0, Z0: -1, X1: 1, Y1: 1, Z1: 1}
	if _, err := Extract([]Box{below}, 1.0, Options{GroundPlane: true}); err == nil {
		t.Error("box crossing the ground plane accepted")
	}
}

// Test3DRaisesNonAdjacentCoupling is the payoff: on the paper's 130 nm
// geometry, the 3-D extraction (finite length, fringe fields) must yield a
// larger non-adjacent-to-adjacent coupling ratio than the 2-D solver —
// closing the gap between our 2-D numbers and the paper's FastCap shares.
func Test3DRaisesNonAdjacentCoupling(t *testing.T) {
	node := itrs.N130
	const wires = 5
	boxes := BusBoxes(node, wires, 20*node.Pitch())
	res3, err := Extract(boxes, node.EpsRel, Options{TargetPanels: 260, GroundPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	layout := geometry.BusLayout{
		Wires: wires,
		W:     node.WireWidth, T: node.WireThickness,
		S: node.Spacing(), H: node.ILDHeight,
		EpsRel: node.EpsRel,
	}
	res2, _, err := extract.ExtractBus(layout, extract.Options{PanelsPerEdge: 6})
	if err != nil {
		t.Fatal(err)
	}
	mid := wires / 2
	ratio3 := res3.Coupling(mid, mid+2) / res3.Coupling(mid, mid+1)
	ratio2 := res2.Coupling(mid, mid+2) / res2.Coupling(mid, mid+1)
	if ratio3 <= ratio2 {
		t.Errorf("3-D CC2/CC1 = %.4f not above 2-D %.4f", ratio3, ratio2)
	}
	// And the 3-D ratio should land in the band the paper's Fig. 1(b)
	// implies (CC2/CC1 ~ 0.05-0.15).
	if ratio3 < 0.03 || ratio3 > 0.3 {
		t.Errorf("3-D CC2/CC1 = %.4f outside the plausible band", ratio3)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Extract(nil, 1, Options{}); err == nil {
		t.Error("no conductors accepted")
	}
	if _, err := Extract([]Box{{Name: "x", X1: 1, Y1: 1, Z1: 1}}, 0.5, Options{}); err == nil {
		t.Error("epsRel < 1 accepted")
	}
	if _, err := Extract([]Box{{Name: "flat", X1: 1, Y1: 1, Z1: 0}}, 1, Options{}); err == nil {
		t.Error("degenerate box accepted")
	}
	// Panel budget guard.
	var many []Box
	for i := 0; i < 50; i++ {
		f := float64(i)
		many = append(many, Box{Name: "b", X0: f * 3, X1: f*3 + 1, Y0: 0, Y1: 1, Z0: 0, Z1: 1})
	}
	if _, err := Extract(many, 1, Options{TargetPanels: 600}); err == nil {
		t.Error("panel budget not enforced")
	}
}

func TestMaxwellSymmetry(t *testing.T) {
	boxes := BusBoxes(itrs.N130, 3, 10*itrs.N130.Pitch())
	res, err := Extract(boxes, itrs.N130.EpsRel, Options{TargetPanels: 150, GroundPlane: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Maxwell.IsSymmetric(0.05) {
		t.Error("Maxwell matrix not symmetric within 5%")
	}
	for i := 0; i < 3; i++ {
		if res.Maxwell.At(i, i) <= 0 {
			t.Errorf("diagonal %d not positive", i)
		}
		if res.SelfToGround(i) <= 0 {
			t.Errorf("self-to-ground %d not positive", i)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && res.Maxwell.At(i, j) >= 0 {
				t.Errorf("off-diagonal (%d,%d) not negative", i, j)
			}
		}
	}
}

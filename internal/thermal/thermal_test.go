package thermal

import (
	"math"
	"testing"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

func TestVerticalResistance130nm(t *testing.T) {
	// Hand evaluation of Eq. 6 for the 130 nm node:
	// Rspr = ln((335+335)/335)/(2*0.6) = ln(2)/1.2
	// Rrect = (724n - 0.5*335n)/(0.6*670n)
	g := NodeGeometry(itrs.N130)
	r, err := g.VerticalResistance()
	if err != nil {
		t.Fatal(err)
	}
	rspr := math.Log(2) / 1.2
	rrect := (724e-9 - 167.5e-9) / (0.6 * 670e-9)
	want := rspr + rrect
	if math.Abs(r-want) > 1e-9*want {
		t.Errorf("Rvert = %g, want %g", r, want)
	}
}

func TestLateralResistance(t *testing.T) {
	g := NodeGeometry(itrs.N130)
	r, err := g.LateralResistance()
	if err != nil {
		t.Fatal(err)
	}
	want := 335e-9 / (0.6 * 670e-9)
	if math.Abs(r-want) > 1e-9*want {
		t.Errorf("Rinter = %g, want %g", r, want)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := WireGeometry{Width: 0, Thickness: 1, Spacing: 1, ILDHeight: 1, KDielectric: 1}
	if _, err := bad.VerticalResistance(); err == nil {
		t.Error("invalid geometry accepted by VerticalResistance")
	}
	if _, err := (WireGeometry{Spacing: 0, Thickness: 1, KDielectric: 1}).LateralResistance(); err == nil {
		t.Error("invalid geometry accepted by LateralResistance")
	}
}

func TestHeatCapacityWireOnly(t *testing.T) {
	g := NodeGeometry(itrs.N130)
	c := g.HeatCapacity(HeatCapacityOptions{})
	want := units.CvCopper * g.Thickness * g.Width
	if math.Abs(c-want) > 1e-12*want {
		t.Errorf("wire-only Ci = %g, want %g", c, want)
	}
	cBig := g.HeatCapacity(HeatCapacityOptions{ExtraDielectricArea: DefaultExtraDielectricArea})
	if cBig <= c {
		t.Error("dielectric mass did not increase Ci")
	}
}

func newTestNetwork(t *testing.T, wires int) *Network {
	t.Helper()
	nw, err := NewFromNode(itrs.N130, wires, NodeOptions{DisableInterLayer: true})
	if err != nil {
		t.Fatalf("NewFromNode: %v", err)
	}
	return nw
}

func TestNoPowerStaysAtAmbient(t *testing.T) {
	nw := newTestNetwork(t, 5)
	if err := nw.Advance(1e-3, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(nw.Temp(i)-units.AmbientK) > 1e-9 {
			t.Errorf("wire %d drifted to %g K with no power", i, nw.Temp(i))
		}
	}
}

func TestUniformPowerSteadyState(t *testing.T) {
	// Uniform power on all wires: lateral flow vanishes by symmetry, so
	// steady state is ambient + P*Rvert for every wire.
	nw := newTestNetwork(t, 7)
	p := make([]float64, 7)
	for i := range p {
		p[i] = 10 // W/m
	}
	ss, err := nw.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	g := NodeGeometry(itrs.N130)
	rv, _ := g.VerticalResistance()
	want := units.AmbientK + 10*rv
	for i, temp := range ss {
		if math.Abs(temp-want) > 1e-6 {
			t.Errorf("wire %d steady state %g, want %g", i, temp, want)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	nw := newTestNetwork(t, 5)
	p := []float64{0, 40, 5, 40, 0} // non-uniform: exercises lateral flow
	ss, err := nw.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Advance many time constants.
	for k := 0; k < 60; k++ {
		if err := nw.Advance(5e-3, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if math.Abs(nw.Temp(i)-ss[i]) > 1e-6*(ss[i]) {
			t.Errorf("wire %d transient %g vs steady state %g", i, nw.Temp(i), ss[i])
		}
	}
}

func TestLateralCouplingFlattensProfile(t *testing.T) {
	// Heat only the centre wire. With lateral conduction its neighbours
	// warm up and the centre runs cooler than without lateral coupling.
	mk := func(disableLateral bool) *Network {
		nw, err := NewFromNode(itrs.N130, 5, NodeOptions{
			DisableInterLayer: true, DisableLateral: disableLateral,
		})
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	p := []float64{0, 0, 50, 0, 0}
	with, err := mk(false).SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	without, err := mk(true).SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if with[2] >= without[2] {
		t.Errorf("lateral coupling did not cool the hot wire: %g vs %g", with[2], without[2])
	}
	if with[1] <= without[1] {
		t.Errorf("lateral coupling did not warm the neighbour: %g vs %g", with[1], without[1])
	}
	// Without lateral coupling the neighbours stay exactly ambient.
	if math.Abs(without[1]-units.AmbientK) > 1e-9 {
		t.Errorf("uncoupled neighbour at %g, want ambient", without[1])
	}
}

func TestEdgeVsMiddleEquations(t *testing.T) {
	// Eq. 3 vs Eq. 4: with equal power everywhere except a cold edge,
	// edge wires (one lateral neighbour) must end up warmer than a middle
	// wire adjacent to the same number of hot wires... simplest check:
	// derivative computation respects the edge/middle structure.
	nw := newTestNetwork(t, 3)
	y := []float64{320, 320, 320}
	dydt := make([]float64, 3)
	nw.dynPower[0], nw.dynPower[1], nw.dynPower[2] = 0, 0, 0
	nw.Derivatives(0, y, dydt)
	// Equal temps, no power: all wires cool identically (only vertical
	// path active; lateral terms cancel).
	if dydt[0] != dydt[1] || dydt[1] != dydt[2] {
		t.Errorf("uniform-state derivatives differ: %v", dydt)
	}
	if dydt[0] >= 0 {
		t.Error("hot unpowered wire not cooling")
	}
	// Now a hot centre: centre loses heat both ways, edges gain.
	y = []float64{320, 330, 320}
	nw.Derivatives(0, y, dydt)
	if !(dydt[1] < dydt[0] && dydt[0] == dydt[2]) {
		t.Errorf("lateral asymmetry wrong: %v", dydt)
	}
}

func TestInterLayerRiseMagnitude(t *testing.T) {
	// Eq. 7 should give a rise of order 10 K at 130 nm (the paper's
	// Fig. 4 saturates ~20 K above ambient with dynamic heating on top)
	// and grow as dielectrics get thermally worse at finer nodes.
	rises := map[string]float64{}
	for _, node := range itrs.Nodes() {
		dt := InterLayerRise(node)
		rises[node.Name] = dt
		if dt <= 0 {
			t.Errorf("%s: Δθ = %g, want > 0", node.Name, dt)
		}
	}
	if rises["130nm"] < 2 || rises["130nm"] > 60 {
		t.Errorf("130nm Δθ = %.2f K, want order 10 K", rises["130nm"])
	}
	if rises["45nm"] <= rises["130nm"] {
		t.Errorf("Δθ should grow with scaling: 45nm %.2f <= 130nm %.2f",
			rises["45nm"], rises["130nm"])
	}
}

func TestNewFromNodeWarmsTowardInterLayerRise(t *testing.T) {
	nw, err := NewFromNode(itrs.N130, 5, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := nw.SteadyState(nil)
	if err != nil {
		t.Fatal(err)
	}
	dTheta := InterLayerRise(itrs.N130)
	want := units.AmbientK + dTheta
	// Middle wire reaches ambient+Δθ (uniform input, lateral cancels).
	if math.Abs(ss[2]-want) > 1e-6 {
		t.Errorf("steady state %g, want %g", ss[2], want)
	}
	// Transient starts at ambient and rises monotonically.
	if nw.Temp(2) != units.AmbientK {
		t.Errorf("initial temp %g, want ambient", nw.Temp(2))
	}
	prev := nw.Temp(2)
	for k := 0; k < 5; k++ {
		if err := nw.Advance(2e-3, nil); err != nil {
			t.Fatal(err)
		}
		cur := nw.Temp(2)
		if cur < prev-1e-12 {
			t.Errorf("temperature fell during warm-up: %g -> %g", prev, cur)
		}
		prev = cur
	}
	if prev <= units.AmbientK+0.1 {
		t.Error("no visible warm-up after 10 ms")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Wires: 0, Ambient: 300, RVertical: []float64{1}, HeatCapacity: []float64{1}},
		{Wires: 2, Ambient: 0, RVertical: []float64{1}, HeatCapacity: []float64{1}},
		{Wires: 2, Ambient: 300, RVertical: []float64{1, 2, 3}, HeatCapacity: []float64{1}},
		{Wires: 2, Ambient: 300, RVertical: []float64{-1}, HeatCapacity: []float64{1}},
		{Wires: 2, Ambient: 300, RVertical: []float64{1}, HeatCapacity: []float64{0}},
		{Wires: 3, Ambient: 300, RVertical: []float64{1}, HeatCapacity: []float64{1}, RLateral: []float64{1, -1}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestAdvanceValidation(t *testing.T) {
	nw := newTestNetwork(t, 3)
	if err := nw.Advance(0, nil); err == nil {
		t.Error("zero dt accepted")
	}
	if err := nw.Advance(1e-3, []float64{1}); err == nil {
		t.Error("short power slice accepted")
	}
	if _, err := nw.SteadyState([]float64{1}); err == nil {
		t.Error("short power slice accepted by SteadyState")
	}
	// Failure injection: NaN, Inf and negative powers are rejected before
	// they can corrupt the integration state.
	for _, bad := range []float64{math.NaN(), math.Inf(1), -1} {
		if err := nw.Advance(1e-3, []float64{bad, 0, 0}); err == nil {
			t.Errorf("power %g accepted", bad)
		}
	}
	before := nw.Temps(nil)
	for i, temp := range before {
		if math.IsNaN(temp) {
			t.Errorf("wire %d corrupted to NaN by rejected input", i)
		}
	}
}

func TestViaConduction(t *testing.T) {
	g := NodeGeometry(itrs.N130)
	base, err := g.VerticalResistanceWithVias(0)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := g.VerticalResistance()
	if base != plain {
		t.Errorf("zero vias %g != plain Eq. 6 %g", base, plain)
	}
	prev := base
	for _, f := range []float64{1e-4, 1e-3, 1e-2} {
		r, err := g.VerticalResistanceWithVias(f)
		if err != nil {
			t.Fatal(err)
		}
		if r >= prev {
			t.Errorf("via fraction %g did not reduce resistance: %g >= %g", f, r, prev)
		}
		prev = r
	}
	// Even 1% via coverage collapses the resistance (copper is ~600x
	// more conductive than the ILD) — the quantitative form of the
	// paper's "long via separations cause higher temperatures".
	dense, _ := g.VerticalResistanceWithVias(0.01)
	if dense > base/3 {
		t.Errorf("1%% vias only reduced R from %g to %g", base, dense)
	}
	if _, err := g.VerticalResistanceWithVias(-0.1); err == nil {
		t.Error("negative via fraction accepted")
	}
	if _, err := g.VerticalResistanceWithVias(1); err == nil {
		t.Error("via fraction 1 accepted")
	}
	// End to end: a via-rich bus runs cooler at the same power.
	hot, err := NewFromNode(itrs.N130, 5, NodeOptions{DisableInterLayer: true})
	if err != nil {
		t.Fatal(err)
	}
	cool, err := NewFromNode(itrs.N130, 5, NodeOptions{DisableInterLayer: true, ViaAreaFraction: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{5, 5, 5, 5, 5}
	hs, err := hot.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cool.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if cs[2] >= hs[2] {
		t.Errorf("vias did not cool the bus: %g vs %g", cs[2], hs[2])
	}
}

func TestSetAmbient(t *testing.T) {
	nw := newTestNetwork(t, 3)
	if err := nw.SetAmbient(0); err == nil {
		t.Error("zero ambient accepted")
	}
	if err := nw.SetAmbient(330); err != nil {
		t.Fatal(err)
	}
	if nw.Ambient() != 330 {
		t.Errorf("ambient = %g", nw.Ambient())
	}
	// Unpowered network drifts toward the new ambient.
	for i := 0; i < 50; i++ {
		if err := nw.Advance(5e-3, nil); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(nw.AvgTemp()-330) > 1e-3 {
		t.Errorf("network settled at %g, want 330", nw.AvgTemp())
	}
}

func TestSetTempsAndStats(t *testing.T) {
	nw := newTestNetwork(t, 4)
	if err := nw.SetTemps([]float64{300, 310, 305, 302}); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetTemps([]float64{1, 2}); err == nil {
		t.Error("short SetTemps accepted")
	}
	maxT, idx := nw.MaxTemp()
	if maxT != 310 || idx != 1 {
		t.Errorf("MaxTemp = %g@%d, want 310@1", maxT, idx)
	}
	if avg := nw.AvgTemp(); math.Abs(avg-304.25) > 1e-12 {
		t.Errorf("AvgTemp = %g, want 304.25", avg)
	}
	got := nw.Temps(nil)
	if len(got) != 4 || got[1] != 310 {
		t.Errorf("Temps = %v", got)
	}
}

func TestIdleCoolingTimescale(t *testing.T) {
	// The Fig. 5 property: a ~1M-cycle idle gap (0.6 ms at 1.68 GHz) must
	// not appreciably cool the bus, because the network time constant is
	// ~10 ms with the dielectric heat mass.
	nw, err := NewFromNode(itrs.N130, 5, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{3, 3, 3, 3, 3}
	// Warm up to near steady state.
	for k := 0; k < 100; k++ {
		if err := nw.Advance(2e-3, p); err != nil {
			t.Fatal(err)
		}
	}
	before := nw.AvgTemp()
	// Idle for 1M cycles at 1.68 GHz.
	idle := 1e6 / itrs.N130.ClockHz
	if err := nw.Advance(idle, nil); err != nil {
		t.Fatal(err)
	}
	after := nw.AvgTemp()
	drop := before - after
	riseAboveAmbient := before - units.AmbientK
	if drop > 0.1*riseAboveAmbient {
		t.Errorf("idle gap cooled the bus by %.3f K of a %.3f K rise (>10%%)", drop, riseAboveAmbient)
	}
}

// Exact interval propagator. Within one sampling interval the network is a
// linear time-invariant ODE with piecewise-constant input (the paper's
// interval-averaged power, Sec. 5.3):
//
//	C dθ/dt = b - G θ,   b = P_dyn + P_inter + G_vert θ0
//
// with C the diagonal heat-capacitance matrix and G the symmetric
// tridiagonal conductance matrix of Eqs. 3-4. Substituting u = θ - θ*
// (θ* the steady state G θ* = b) and x = C^{1/2} u symmetrizes the system:
//
//	dx/dt = -S x,   S = C^{-1/2} G C^{-1/2}  (symmetric tridiagonal)
//
// whose exact solution is x(dt) = Q e^{-Λ dt} Q^T x(0) with S = Q Λ Q^T.
// The eigendecomposition is computed once per network; each Advance is then
// a tridiagonal steady-state solve plus two dense matvecs — machine-
// precision exact for any dt, replacing the sub-stepped RK4 integration
// (which remains available behind NodeOptions.UseRK4 for validation).
package thermal

import (
	"fmt"
	"math"

	"nanobus/internal/linalg"
)

// propagator holds the spectral factorisation of one network plus the
// exponential factors of the most recent dt (interval lengths repeat —
// every full interval shares one dt, only the final partial interval
// differs — so a single cached dt covers nearly every call).
type propagator struct {
	n               int
	sqrtC, invSqrtC []float64
	lambda          []float64      // eigenvalues of S, ascending, all > 0
	q, qt           *linalg.Matrix // eigenvectors of S and their transpose

	lastDt float64
	expL   []float64 // exp(-lambda*dt) for lastDt

	// Per-advance scratch, so the hot path allocates nothing.
	star, rhs, cp, dp, v, w []float64
}

// newPropagator factors the network's symmetrized conductance system.
func newPropagator(nw *Network) (*propagator, error) {
	n := nw.n
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = nw.ssDiag[i] / nw.heatCap[i]
	}
	if nw.gLat != nil {
		for i := 0; i+1 < n; i++ {
			e[i] = -nw.gLat[i] / math.Sqrt(nw.heatCap[i]*nw.heatCap[i+1])
		}
	}
	lambda, q, err := linalg.SymTridiagEigen(d, e)
	if err != nil {
		return nil, fmt.Errorf("thermal: propagator eigendecomposition: %w", err)
	}
	p := &propagator{
		n:        n,
		sqrtC:    make([]float64, n),
		invSqrtC: make([]float64, n),
		lambda:   lambda,
		q:        q,
		qt:       q.Transpose(),
		expL:     make([]float64, n),
		star:     make([]float64, n),
		rhs:      make([]float64, n),
		cp:       make([]float64, n),
		dp:       make([]float64, n),
		v:        make([]float64, n),
		w:        make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.sqrtC[i] = math.Sqrt(nw.heatCap[i])
		p.invSqrtC[i] = 1 / p.sqrtC[i]
	}
	return p, nil
}

// advance moves the network temperatures exactly dt seconds forward under
// the network's current dynPower: θ(dt) = θ* + C^{-1/2} Q e^{-Λdt} Q^T
// C^{1/2} (θ(0) - θ*).
func (p *propagator) advance(nw *Network, dt float64) error {
	if dt != p.lastDt { //nanolint:ignore floateq dt is the exact cache key; intervals repeat bit-identical lengths
		for i, l := range p.lambda {
			p.expL[i] = math.Exp(-l * dt)
		}
		p.lastDt = dt
	}
	if err := nw.steadyInto(nw.dynPower, p.rhs, p.cp, p.dp, p.star); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		p.v[i] = p.sqrtC[i] * (nw.temps[i] - p.star[i])
	}
	if err := p.qt.MulVecInto(p.v, p.w); err != nil {
		return err
	}
	for i := range p.w {
		p.w[i] *= p.expL[i]
	}
	if err := p.q.MulVecInto(p.w, p.v); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		nw.temps[i] = p.star[i] + p.invSqrtC[i]*p.v[i]
	}
	return nil
}

// Exact interval propagator. Within one sampling interval the network is a
// linear time-invariant ODE with piecewise-constant input (the paper's
// interval-averaged power, Sec. 5.3):
//
//	C dθ/dt = b - G θ,   b = P_dyn + P_inter + G_vert θ0
//
// with C the diagonal heat-capacitance matrix and G the symmetric
// tridiagonal conductance matrix of Eqs. 3-4. Substituting u = θ - θ*
// (θ* the steady state G θ* = b) and x = C^{1/2} u symmetrizes the system:
//
//	dx/dt = -S x,   S = C^{-1/2} G C^{-1/2}  (symmetric tridiagonal)
//
// whose exact solution is x(dt) = Q e^{-Λ dt} Q^T x(0) with S = Q Λ Q^T.
// The eigendecomposition is computed once per network. Because interval
// lengths repeat (every full sampling interval shares one dt; only the
// final partial interval differs), the whole affine step for the cached dt
// is collapsed into one dense matrix
//
//	M(dt) = C^{-1/2} Q e^{-Λ dt} Q^T C^{1/2}
//
// so each Advance is a tridiagonal steady-state solve plus a single dense
// matvec θ(dt) = θ* + M (θ(0) - θ*) — machine-precision exact for any dt,
// and cheaper per call than the sub-stepped RK4 integration it replaces
// (which remains available behind NodeOptions.UseRK4 for validation). The
// O(n^3) M rebuild runs only when dt changes, i.e. once per run plus once
// for the final partial interval.
package thermal

import (
	"fmt"
	"math"

	"nanobus/internal/linalg"
)

// propagator holds the spectral factorisation of one network plus the
// exponential factors of the most recent dt (interval lengths repeat —
// every full interval shares one dt, only the final partial interval
// differs — so a single cached dt covers nearly every call).
type propagator struct {
	n               int
	sqrtC, invSqrtC []float64
	lambda          []float64      // eigenvalues of S, ascending, all > 0
	q               *linalg.Matrix // eigenvectors of S (columns)

	lastDt float64
	expL   []float64      // exp(-lambda*dt) for lastDt
	m      *linalg.Matrix // dense affine step C^{-1/2} Q e^{-Λ dt} Q^T C^{1/2} for lastDt

	// Per-advance scratch, so the hot path allocates nothing.
	star, rhs, cp, dp, v, w []float64
}

// newPropagator factors the network's symmetrized conductance system.
func newPropagator(nw *Network) (*propagator, error) {
	n := nw.n
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = nw.ssDiag[i] / nw.heatCap[i]
	}
	if nw.gLat != nil {
		for i := 0; i+1 < n; i++ {
			e[i] = -nw.gLat[i] / math.Sqrt(nw.heatCap[i]*nw.heatCap[i+1])
		}
	}
	lambda, q, err := linalg.SymTridiagEigen(d, e)
	if err != nil {
		return nil, fmt.Errorf("thermal: propagator eigendecomposition: %w", err)
	}
	p := &propagator{
		n:        n,
		sqrtC:    make([]float64, n),
		invSqrtC: make([]float64, n),
		lambda:   lambda,
		q:        q,
		expL:     make([]float64, n),
		m:        linalg.NewSquare(n),
		star:     make([]float64, n),
		rhs:      make([]float64, n),
		cp:       make([]float64, n),
		dp:       make([]float64, n),
		v:        make([]float64, n),
		w:        make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.sqrtC[i] = math.Sqrt(nw.heatCap[i])
		p.invSqrtC[i] = 1 / p.sqrtC[i]
	}
	return p, nil
}

// rebuildM recomputes the cached dense affine-step matrix
// M = C^{-1/2} Q e^{-Λ dt} Q^T C^{1/2} for a new dt. O(n^3), but dt only
// changes once per run plus once for the final partial interval, so the
// cost amortizes to nothing against the per-interval advance.
func (p *propagator) rebuildM(dt float64) {
	for i, l := range p.lambda {
		p.expL[i] = math.Exp(-l * dt)
	}
	for i := 0; i < p.n; i++ {
		qi := p.q.Row(i)
		for k := 0; k < p.n; k++ {
			p.w[k] = qi[k] * p.expL[k]
		}
		scale := p.invSqrtC[i]
		for j := 0; j < p.n; j++ {
			qj := p.q.Row(j)
			s := 0.0
			for k := 0; k < p.n; k++ {
				s += p.w[k] * qj[k]
			}
			p.m.Set(i, j, scale*s*p.sqrtC[j])
		}
	}
	p.lastDt = dt
}

// advance moves the network temperatures exactly dt seconds forward under
// the network's current dynPower: θ(dt) = θ* + M (θ(0) - θ*) with the
// cached M = C^{-1/2} Q e^{-Λdt} Q^T C^{1/2}.
//
//nanolint:hotpath one call per sampling interval; steady state, one matvec, no allocations
func (p *propagator) advance(nw *Network, dt float64) error {
	if dt != p.lastDt { //nanolint:ignore floateq dt is the exact cache key; intervals repeat bit-identical lengths
		p.rebuildM(dt)
	}
	if err := nw.steadyInto(nw.dynPower, p.rhs, p.cp, p.dp, p.star); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		p.v[i] = nw.temps[i] - p.star[i]
	}
	if err := p.m.MulVecInto(p.v, p.w); err != nil {
		return err
	}
	for i := 0; i < p.n; i++ {
		nw.temps[i] = p.star[i] + p.w[i]
	}
	return nil
}

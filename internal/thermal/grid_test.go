package thermal

import (
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/itrs"
)

// twinGrids builds two identical K-bus grids from the node, one on the
// exact banded propagator (the default) and one forced onto RK4 — the
// banded mirror of twinNetworks.
func twinGrids(t *testing.T, wires, buses int) (exact, rk4 *Grid) {
	t.Helper()
	exact, err := NewGridFromNode(itrs.N90, wires, buses, GridNodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rk4, err = NewGridFromNode(itrs.N90, wires, buses, GridNodeOptions{NodeOptions: NodeOptions{UseRK4: true}})
	if err != nil {
		t.Fatal(err)
	}
	return exact, rk4
}

// TestGridMatchesRK4 drives the banded exact propagator and RK4 through
// the same random piecewise-constant power schedule and requires
// agreement to well within RK4's truncation error — the banded twin of
// the tridiagonal TestPropagatorMatchesRK4.
func TestGridMatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ wires, buses int }{{8, 1}, {4, 2}, {8, 4}, {2, 8}} {
		exact, rk4 := twinGrids(t, shape.wires, shape.buses)
		n := shape.wires * shape.buses
		dt := 1e-4
		for step := 0; step < 40; step++ {
			p := randomPower(rng, n)
			if step%5 == 4 {
				p = nil // idle interval
			}
			if err := exact.Advance(dt, p); err != nil {
				t.Fatal(err)
			}
			if err := rk4.Advance(dt, p); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < shape.buses; k++ {
			for j := 0; j < shape.wires; j++ {
				a, b := exact.Temp(k, j), rk4.Temp(k, j)
				if rise := a - exact.Ambient(); rise < 1e-3 {
					t.Fatalf("%dx%d bus %d wire %d: no appreciable heating (rise %g K)", shape.buses, shape.wires, k, j, rise)
				}
				if diff := math.Abs(a - b); diff > 1e-6 {
					t.Errorf("%dx%d bus %d wire %d: exact %.9f K vs RK4 %.9f K (|Δ| = %g)",
						shape.buses, shape.wires, k, j, a, b, diff)
				}
			}
		}
	}
}

// TestGridLongDtConvergesToSteadyState checks the banded analytic path:
// one exact step over many time constants lands on the steady state.
func TestGridLongDtConvergesToSteadyState(t *testing.T) {
	exact, _ := twinGrids(t, 8, 4)
	p := make([]float64, 32)
	for i := range p {
		p[i] = float64((i*7)%13) + 1
	}
	want, err := exact.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Advance(1.0, p); err != nil {
		t.Fatal(err)
	}
	got := exact.Temps(nil)
	for i := range want {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-8 {
			t.Errorf("node %d: long-dt temp %.12f K vs steady state %.12f K", i, got[i], want[i])
		}
	}
}

// TestGridDecoupledMatchesIndependentNetworks pins the ablation contract:
// with the lateral bus-to-bus resistance severed, a K-bus grid is exactly
// K independent tridiagonal networks.
func TestGridDecoupledMatchesIndependentNetworks(t *testing.T) {
	const wires, buses = 8, 3
	dg, err := NewGridFromNode(itrs.N90, wires, buses, GridNodeOptions{DisableBusCoupling: true})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*Network, buses)
	for k := range nets {
		if nets[k], err = NewFromNode(itrs.N90, wires, NodeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	p := make([]float64, wires*buses)
	for i := range p {
		p[i] = float64(i)
	}
	for step := 0; step < 10; step++ {
		if err := dg.Advance(2e-4, p); err != nil {
			t.Fatal(err)
		}
		for k := range nets {
			if err := nets[k].Advance(2e-4, p[k*wires:(k+1)*wires]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := range nets {
		for j := 0; j < wires; j++ {
			a, b := dg.Temp(k, j), nets[k].Temp(j)
			if math.Abs(a-b) > 1e-9 {
				t.Errorf("decoupled bus %d wire %d: %.12f vs %.12f", k, j, a, b)
			}
		}
	}
}

// TestGridCouplingWarmsQuietNeighbor is the physical sanity check of the
// lateral band: a switching bus must raise a quiet neighbor above the
// temperature it reaches in isolation.
func TestGridCouplingWarmsQuietNeighbor(t *testing.T) {
	const wires = 8
	mk := func(disable bool) []float64 {
		g, err := NewGridFromNode(itrs.N90, wires, 2, GridNodeOptions{DisableBusCoupling: disable})
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, 2*wires)
		for j := 0; j < wires; j++ {
			p[j] = 30 // bus 0 hot, bus 1 quiet
		}
		ss, err := g.SteadyState(p)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	coupled, isolated := mk(false), mk(true)
	quiet := wires + wires/2
	if coupled[quiet] <= isolated[quiet] {
		t.Errorf("coupled quiet bus %.6f K not warmer than isolated %.6f K", coupled[quiet], isolated[quiet])
	}
	t.Logf("quiet bus center: coupled %.4f K vs isolated %.4f K (hot bus %.4f K)",
		coupled[quiet], isolated[quiet], coupled[wires/2])
}

// TestGridAccessors pins the per-bus views against the flat slab.
func TestGridAccessors(t *testing.T) {
	g, _ := twinGrids(t, 4, 3)
	p := []float64{1, 2, 3, 4, 40, 30, 20, 10, 5, 5, 5, 5}
	for step := 0; step < 5; step++ {
		if err := g.Advance(1e-4, p); err != nil {
			t.Fatal(err)
		}
	}
	flat := g.Temps(nil)
	if len(flat) != g.N() || g.N() != 12 || g.Buses() != 3 || g.Wires() != 4 {
		t.Fatalf("dims: n=%d buses=%d wires=%d", g.N(), g.Buses(), g.Wires())
	}
	maxT, maxBus, maxWire := g.MaxTemp()
	var wantT float64
	var wantBus, wantWire int
	for k := 0; k < 3; k++ {
		bus := g.BusTemps(k, nil)
		busMax, busArg := g.BusMaxTemp(k)
		var sum, bm float64
		var barg int
		for j := 0; j < 4; j++ {
			if bus[j] != flat[k*4+j] || g.Temp(k, j) != flat[k*4+j] {
				t.Fatalf("bus %d wire %d: views disagree", k, j)
			}
			sum += bus[j]
			if bus[j] > bm {
				bm, barg = bus[j], j
			}
			if bus[j] > wantT {
				wantT, wantBus, wantWire = bus[j], k, j
			}
		}
		if busMax != bm || busArg != barg {
			t.Fatalf("bus %d: BusMaxTemp %g@%d, want %g@%d", k, busMax, busArg, bm, barg)
		}
		if avg := g.BusAvgTemp(k); math.Abs(avg-sum/4) > 1e-12 {
			t.Fatalf("bus %d: BusAvgTemp %g, want %g", k, avg, sum/4)
		}
	}
	if maxT != wantT || maxBus != wantBus || maxWire != wantWire {
		t.Fatalf("MaxTemp %g@%d/%d, want %g@%d/%d", maxT, maxBus, maxWire, wantT, wantBus, wantWire)
	}
}

// TestGridReset verifies Reset restores ambient everywhere and that a
// reset grid replays a run bit-identically (the cached factorisation is
// retained, which must not change results).
func TestGridReset(t *testing.T) {
	g, _ := twinGrids(t, 4, 2)
	p := []float64{1, 2, 3, 4, 4, 3, 2, 1}
	run := func() []float64 {
		for step := 0; step < 5; step++ {
			if err := g.Advance(1e-3, p); err != nil {
				t.Fatal(err)
			}
		}
		return g.Temps(nil)
	}
	first := run()
	g.Reset()
	for i, temp := range g.Temps(nil) {
		if temp != g.Ambient() {
			t.Fatalf("node %d at %g K after Reset, ambient is %g K", i, temp, g.Ambient())
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("node %d: replay after Reset gives %.17g, first run gave %.17g", i, second[i], first[i])
		}
	}
}

// TestGridSetAmbient pins the mid-run reference change: SetAmbient
// rejects non-positive temperatures, Ambient reflects the new value, and
// the next Reset settles every node there.
func TestGridSetAmbient(t *testing.T) {
	g, _ := twinGrids(t, 4, 2)
	if err := g.SetAmbient(0); err == nil {
		t.Fatal("zero ambient accepted")
	}
	if err := g.SetAmbient(-300); err == nil {
		t.Fatal("negative ambient accepted")
	}
	old := g.Ambient()
	if err := g.SetAmbient(old + 25); err != nil {
		t.Fatalf("SetAmbient: %v", err)
	}
	if g.Ambient() != old+25 {
		t.Fatalf("Ambient = %g, want %g", g.Ambient(), old+25)
	}
	g.Reset()
	for i, temp := range g.Temps(nil) {
		if temp != old+25 {
			t.Fatalf("node %d at %g K after Reset, new ambient is %g K", i, temp, old+25)
		}
	}
}

// Banded multi-bus thermal grid. A full-chip interconnect layer runs K
// parallel buses side by side on the top metal; each bus is the paper's
// W-wire thermal-RC chain, and adjacent buses exchange heat through the
// inter-bus dielectric. The thermal diffusion length (~50 um, the same
// cloud that calibrates DefaultExtraDielectricArea) is larger than a bus
// footprint (32 wires x ~1 um pitch), so each wire of bus k sees bus k+1
// as a nearly isothermal slab: the inter-bus path is modeled mean-field
// as a uniform per-wire-pair coupling between wire j of bus k and wire j
// of bus k+1, with the slab conductance split evenly over the W parallel
// channels.
//
// That turns the conductance system into a banded matrix of bandwidth W
// over the K*W grid — no longer tridiagonal — but one with Kronecker-sum
// structure. With uniform per-wire heat capacitance c (NewFromNode always
// broadcasts uniform coefficients) the symmetrized system is
//
//	S = I_K (x) A  +  B (x) I_W
//
// where A is the W x W intra-bus tridiagonal (vertical + wire-to-wire
// lateral conductance over c) and B is the K x K inter-bus tridiagonal
// (bus-to-bus coupling over c). Eigenvectors of a Kronecker sum factor as
// Q_B (x) Q_A and eigenvalues add: lambda_{k,j} = beta_k + alpha_j. The
// exact interval propagator therefore generalizes with two small
// eigendecompositions (W x W and K x K) instead of one dense K*W x K*W
// one, and each Advance is four small dense matrix products:
//
//	U   = Q_B^T X Q_A          (to eigenbasis)
//	U  *= exp(-(beta+alpha)dt) (elementwise decay)
//	X   = Q_B U Q_A^T          (back)
//
// applied to the temperature deviation from the banded steady state
// (solved spectrally the same way with 1/lambda in place of the decay).
// The paper's sub-stepped RK4 on the flattened banded system remains the
// validation fallback behind GridConfig.ForceRK4.
package thermal

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/linalg"
	"nanobus/internal/ode"
	"nanobus/internal/units"
)

// DefaultBusGapPitches is the default inter-bus edge gap, expressed in
// intra-bus wire pitches. Global buses are routed with a few tracks of
// clearance; eight pitches keeps the coupling weak but visible (a hot
// neighbor raises a quiet bus by a few kelvin at steady state).
const DefaultBusGapPitches = 8.0

// GridConfig assembles a Grid directly from uniform per-wire parameters.
// Most callers should use NewGridFromNode instead.
type GridConfig struct {
	// Buses (K) and Wires (W) shape the grid; temperatures, powers and
	// snapshots use bus-major [K*W] slabs (bus k wire j at index k*W+j).
	Buses, Wires int
	// Ambient is the constant substrate/reference temperature in kelvin.
	Ambient float64
	// RVertical is the per-wire vertical resistance (K*m/W).
	RVertical float64
	// RLateral is the intra-bus wire-to-wire lateral resistance (K*m/W);
	// zero disables intra-bus coupling.
	RLateral float64
	// RBus is the inter-bus per-wire-pair lateral resistance (K*m/W)
	// between wire j of adjacent buses; zero disables inter-bus coupling
	// (the grid then decouples into K independent Networks).
	RBus float64
	// HeatCapacity is the per-wire thermal capacitance (J/(K*m)).
	HeatCapacity float64
	// InterLayerPower is the constant heating input per wire (W/m).
	InterLayerPower float64
	// MaxStep bounds the RK4 internal step in seconds; zero picks half of
	// the fastest grid mode's time constant.
	MaxStep float64
	// ForceRK4 integrates Advance with sub-stepped RK4 on the flattened
	// banded system instead of the exact spectral propagator.
	ForceRK4 bool
}

// Grid is the banded thermal network of K parallel buses.
type Grid struct {
	buses, wires int
	ambient      float64
	gVert        float64
	gLat         float64 // intra-bus wire-to-wire conductance (0 = none)
	gBus         float64 // inter-bus per-wire-pair conductance (0 = none)
	heatCap      float64
	interPower   float64

	temps    []float64 // [K*W] bus-major
	dynPower []float64

	useRK4 bool
	integ  *ode.RK4

	// Spectral factorization of the Kronecker sum (nil under ForceRK4
	// until first needed — RK4 never needs it).
	alpha, beta        []float64 // eigenvalues of A and B (ascending)
	qa, qat, qb, qbt   *linalg.Matrix
	lastDt             float64
	expL               []float64      // [K*W] exp(-(beta_k+alpha_j)*lastDt)
	xm, um, tm, sm, pm *linalg.Matrix // K x W scratch
}

// NewGrid builds a Grid from the configuration.
func NewGrid(cfg GridConfig) (*Grid, error) {
	k, w := cfg.Buses, cfg.Wires
	if k < 1 {
		return nil, fmt.Errorf("thermal: grid buses %d < 1", k)
	}
	if w < 1 {
		return nil, fmt.Errorf("thermal: grid wires %d < 1", w)
	}
	if cfg.Ambient <= 0 {
		return nil, fmt.Errorf("thermal: non-positive ambient %g K", cfg.Ambient)
	}
	if cfg.RVertical <= 0 {
		return nil, fmt.Errorf("thermal: grid RVertical %g <= 0", cfg.RVertical)
	}
	if cfg.HeatCapacity <= 0 {
		return nil, fmt.Errorf("thermal: grid HeatCapacity %g <= 0", cfg.HeatCapacity)
	}
	if cfg.RLateral < 0 || cfg.RBus < 0 {
		return nil, fmt.Errorf("thermal: negative lateral resistance (RLateral %g, RBus %g)", cfg.RLateral, cfg.RBus)
	}
	if cfg.InterLayerPower < 0 {
		return nil, fmt.Errorf("thermal: negative inter-layer power %g", cfg.InterLayerPower)
	}
	g := &Grid{
		buses:      k,
		wires:      w,
		ambient:    cfg.Ambient,
		gVert:      1 / cfg.RVertical,
		heatCap:    cfg.HeatCapacity,
		interPower: cfg.InterLayerPower,
		temps:      make([]float64, k*w),
		dynPower:   make([]float64, k*w),
		useRK4:     cfg.ForceRK4,
	}
	if cfg.RLateral > 0 && w > 1 {
		g.gLat = 1 / cfg.RLateral
	}
	if cfg.RBus > 0 && k > 1 {
		g.gBus = 1 / cfg.RBus
	}
	for i := range g.temps {
		g.temps[i] = cfg.Ambient
	}
	maxStep := cfg.MaxStep
	if maxStep <= 0 {
		// Fastest mode bound: all conduction paths of an interior node in
		// parallel, halved for the same safety margin Network uses.
		gMax := g.gVert + 2*g.gLat + 2*g.gBus
		maxStep = g.heatCap / gMax / 2
	}
	g.integ = ode.NewRK4(maxStep)
	if !g.useRK4 {
		if err := g.factor(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// factor eigendecomposes the two Kronecker factors A/c (intra-bus) and
// B/c (inter-bus) and allocates the per-advance scratch.
func (g *Grid) factor() error {
	k, w, c := g.buses, g.wires, g.heatCap
	da := make([]float64, w)
	ea := make([]float64, maxInt(w-1, 0))
	for j := 0; j < w; j++ {
		d := g.gVert
		if j > 0 {
			d += g.gLat
		}
		if j < w-1 {
			d += g.gLat
		}
		da[j] = d / c
	}
	for j := 0; j+1 < w; j++ {
		ea[j] = -g.gLat / c
	}
	alpha, qa, err := linalg.SymTridiagEigen(da, ea)
	if err != nil {
		return fmt.Errorf("thermal: grid intra-bus eigendecomposition: %w", err)
	}
	db := make([]float64, k)
	eb := make([]float64, maxInt(k-1, 0))
	for i := 0; i < k; i++ {
		var d float64
		if i > 0 {
			d += g.gBus
		}
		if i < k-1 {
			d += g.gBus
		}
		db[i] = d / c
	}
	for i := 0; i+1 < k; i++ {
		eb[i] = -g.gBus / c
	}
	beta, qb, err := linalg.SymTridiagEigen(db, eb)
	if err != nil {
		return fmt.Errorf("thermal: grid inter-bus eigendecomposition: %w", err)
	}
	g.alpha, g.qa, g.qat = alpha, qa, qa.Transpose()
	g.beta, g.qb, g.qbt = beta, qb, qb.Transpose()
	g.expL = make([]float64, k*w)
	g.lastDt = 0
	g.xm = linalg.NewRect(k, w)
	g.um = linalg.NewRect(k, w)
	g.tm = linalg.NewRect(k, w)
	g.sm = linalg.NewRect(k, w)
	g.pm = linalg.NewRect(k, w)
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Buses returns K, the number of buses.
func (g *Grid) Buses() int { return g.buses }

// Wires returns W, the per-bus wire count.
func (g *Grid) Wires() int { return g.wires }

// N returns the total node count K*W.
func (g *Grid) N() int { return g.buses * g.wires }

// Ambient returns the reference temperature in kelvin.
func (g *Grid) Ambient() float64 { return g.ambient }

// SetAmbient changes the substrate/reference temperature mid-simulation.
func (g *Grid) SetAmbient(kelvin float64) error {
	if kelvin <= 0 {
		return fmt.Errorf("thermal: non-positive ambient %g K", kelvin)
	}
	g.ambient = kelvin
	return nil
}

// Temps copies the bus-major [K*W] temperature slab into dst and returns
// it; a nil dst allocates.
func (g *Grid) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(g.temps))
	}
	copy(dst, g.temps)
	return dst
}

// SetTemps overwrites the temperature slab (e.g. checkpoint restore); the
// slice length must be K*W.
func (g *Grid) SetTemps(t []float64) error {
	if len(t) != len(g.temps) {
		return fmt.Errorf("thermal: SetTemps length %d, want %d", len(t), len(g.temps))
	}
	copy(g.temps, t)
	return nil
}

// BusTemps copies bus k's wire temperatures into dst and returns it; a
// nil dst allocates.
func (g *Grid) BusTemps(k int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, g.wires)
	}
	copy(dst, g.temps[k*g.wires:(k+1)*g.wires])
	return dst
}

// Temp returns the temperature of wire j on bus k.
func (g *Grid) Temp(k, j int) float64 { return g.temps[k*g.wires+j] }

// BusMaxTemp returns bus k's hottest wire temperature and wire index.
func (g *Grid) BusMaxTemp(k int) (float64, int) {
	row := g.temps[k*g.wires : (k+1)*g.wires]
	best, idx := row[0], 0
	for j, t := range row {
		if t > best {
			best, idx = t, j
		}
	}
	return best, idx
}

// BusAvgTemp returns bus k's mean wire temperature.
func (g *Grid) BusAvgTemp(k int) float64 {
	row := g.temps[k*g.wires : (k+1)*g.wires]
	s := 0.0
	for _, t := range row {
		s += t
	}
	return s / float64(g.wires)
}

// MaxTemp returns the grid-wide hottest temperature with its bus and wire
// indices.
func (g *Grid) MaxTemp() (temp float64, bus, wire int) {
	best, idx := g.temps[0], 0
	for i, t := range g.temps {
		if t > best {
			best, idx = t, i
		}
	}
	return best, idx / g.wires, idx % g.wires
}

// Reset returns every node to the current ambient temperature, keeping
// the spectral factorization.
func (g *Grid) Reset() {
	for i := range g.temps {
		g.temps[i] = g.ambient
	}
}

// Dim implements ode.System over the flattened grid.
func (g *Grid) Dim() int { return g.buses * g.wires }

// Derivatives implements ode.System: the banded heat balance with
// intra-bus neighbors at stride 1 and inter-bus neighbors at stride W.
func (g *Grid) Derivatives(t float64, y, dydt []float64) {
	k, w := g.buses, g.wires
	for b := 0; b < k; b++ {
		base := b * w
		for j := 0; j < w; j++ {
			i := base + j
			q := g.dynPower[i] + g.interPower - (y[i]-g.ambient)*g.gVert
			if g.gLat != 0 { //nanolint:ignore floateq zero is the exact no-lateral-coupling sentinel, never a computed value
				if j > 0 {
					q -= (y[i] - y[i-1]) * g.gLat
				}
				if j < w-1 {
					q -= (y[i] - y[i+1]) * g.gLat
				}
			}
			if g.gBus != 0 { //nanolint:ignore floateq zero is the exact decoupled-grid sentinel (DisableBusCoupling), never a computed value
				if b > 0 {
					q -= (y[i] - y[i-w]) * g.gBus
				}
				if b < k-1 {
					q -= (y[i] - y[i+w]) * g.gBus
				}
			}
			dydt[i] = q / g.heatCap
		}
	}
}

// Advance moves the grid over dt seconds with the given bus-major [K*W]
// dynamic power slab (W/m, piecewise constant over the interval). power
// may be nil for an idle interval.
//
//nanolint:hotpath one call per sampling interval for all K buses; allocates nothing
func (g *Grid) Advance(dt float64, power []float64) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %g", dt)
	}
	if power == nil {
		for i := range g.dynPower {
			g.dynPower[i] = 0
		}
	} else {
		if len(power) != len(g.dynPower) {
			return fmt.Errorf("thermal: power length %d, want %d", len(power), len(g.dynPower))
		}
		for i, p := range power {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				return fmt.Errorf("thermal: invalid power %g on bus %d wire %d", p, i/g.wires, i%g.wires)
			}
		}
		copy(g.dynPower, power)
	}
	if g.useRK4 {
		_, err := g.integ.Integrate(g, 0, dt, g.temps)
		return err
	}
	if g.expL == nil {
		if err := g.factor(); err != nil {
			return err
		}
	}
	return g.spectralAdvance(dt)
}

// spectralAdvance applies the exact Kronecker-sum propagator:
// X(dt) = X* + invT(exp(-Lambda dt) .* T(X(0) - X*)) with T the
// two-sided eigenbasis transform U = Q_B^T X Q_A.
func (g *Grid) spectralAdvance(dt float64) error {
	k, w := g.buses, g.wires
	if dt != g.lastDt { //nanolint:ignore floateq dt is the exact cache key; intervals repeat bit-identical lengths
		for b := 0; b < k; b++ {
			bb := g.beta[b]
			row := g.expL[b*w : (b+1)*w]
			for j := 0; j < w; j++ {
				row[j] = math.Exp(-(bb + g.alpha[j]) * dt)
			}
		}
		g.lastDt = dt
	}
	// Steady state X*: solve c * (Q Lambda Q^T) X* = RHS spectrally.
	for b := 0; b < k; b++ {
		prow := g.pm.Row(b)
		for j := 0; j < w; j++ {
			prow[j] = g.interPower + g.gVert*g.ambient + g.dynPower[b*w+j]
		}
	}
	if err := g.toEigen(g.pm, g.um); err != nil {
		return err
	}
	c := g.heatCap
	for b := 0; b < k; b++ {
		bb := g.beta[b]
		urow := g.um.Row(b)
		for j := 0; j < w; j++ {
			urow[j] /= c * (bb + g.alpha[j])
		}
	}
	if err := g.fromEigen(g.um, g.sm); err != nil {
		return err
	}
	// Transient: decay the deviation from steady state in the eigenbasis.
	for b := 0; b < k; b++ {
		xrow := g.xm.Row(b)
		srow := g.sm.Row(b)
		for j := 0; j < w; j++ {
			xrow[j] = g.temps[b*w+j] - srow[j]
		}
	}
	if err := g.toEigen(g.xm, g.um); err != nil {
		return err
	}
	for b := 0; b < k; b++ {
		urow := g.um.Row(b)
		erow := g.expL[b*w : (b+1)*w]
		for j := 0; j < w; j++ {
			urow[j] *= erow[j]
		}
	}
	if err := g.fromEigen(g.um, g.xm); err != nil {
		return err
	}
	for b := 0; b < k; b++ {
		xrow := g.xm.Row(b)
		srow := g.sm.Row(b)
		for j := 0; j < w; j++ {
			g.temps[b*w+j] = srow[j] + xrow[j]
		}
	}
	return nil
}

// toEigen computes dst = Q_B^T src Q_A through the tm scratch.
func (g *Grid) toEigen(src, dst *linalg.Matrix) error {
	if err := g.qbt.MulInto(src, g.tm); err != nil {
		return err
	}
	return g.tm.MulInto(g.qa, dst)
}

// fromEigen computes dst = Q_B src Q_A^T through the tm scratch.
func (g *Grid) fromEigen(src, dst *linalg.Matrix) error {
	if err := g.qb.MulInto(src, g.tm); err != nil {
		return err
	}
	return g.tm.MulInto(g.qat, dst)
}

// SteadyState returns the equilibrium bus-major temperature slab for a
// constant power slab (nil meaning zero dynamic power). It does not
// modify the grid state.
func (g *Grid) SteadyState(power []float64) ([]float64, error) {
	if power != nil && len(power) != g.buses*g.wires {
		return nil, fmt.Errorf("thermal: power length %d, want %d", len(power), g.buses*g.wires)
	}
	// Work on a throwaway copy of the grid's input/scratch state so the
	// query is side-effect free on temperatures.
	saved := g.Temps(nil)
	savedPower := make([]float64, len(g.dynPower))
	copy(savedPower, g.dynPower)
	if power == nil {
		for i := range g.dynPower {
			g.dynPower[i] = 0
		}
	} else {
		copy(g.dynPower, power)
	}
	var out []float64
	var err error
	if g.expL == nil {
		err = g.factor()
	}
	if err == nil {
		// Reuse the spectral machinery: steady state is the t -> inf limit,
		// i.e. the sm matrix spectralAdvance computes. A large dt makes the
		// transient underflow to zero regardless of the starting point.
		err = g.spectralAdvance(math.Inf(1))
		if err == nil {
			out = g.Temps(nil)
		}
	}
	restoreErr := g.SetTemps(saved)
	copy(g.dynPower, savedPower)
	g.lastDt = 0 // invalidate the inf-dt decay cache
	if err != nil {
		return nil, err
	}
	if restoreErr != nil {
		return nil, restoreErr
	}
	return out, nil
}

// GridNodeOptions configure NewGridFromNode.
type GridNodeOptions struct {
	// NodeOptions carry the single-bus knobs (ambient, heat capacity,
	// lateral/inter-layer ablations, vias, RK4 fallback). MaxStep bounds
	// the RK4 substep exactly as for NewFromNode.
	NodeOptions
	// BusGapPitches is the edge-to-edge gap between adjacent buses in
	// intra-bus wire pitches; zero selects DefaultBusGapPitches. The
	// mean-field per-wire-pair inter-bus resistance is W times the slab
	// resistance of that gap (the slab conductance splits evenly over the
	// W parallel per-wire channels).
	BusGapPitches float64
	// DisableBusCoupling removes inter-bus conduction, decoupling the
	// grid into K independent buses (the ablation that recovers K
	// separate Networks).
	DisableBusCoupling bool
}

// NewGridFromNode builds the banded thermal grid of K wires-wide global
// buses on the given technology node. Per-bus coefficients match
// NewFromNode exactly (same Eq. 6 vertical resistance, Sec. 4.1.1
// lateral resistance, Eq. 7 inter-layer heating), so a grid with
// DisableBusCoupling reproduces K independent NewFromNode networks.
func NewGridFromNode(node itrs.Node, wires, buses int, opts GridNodeOptions) (*Grid, error) {
	g := NodeGeometry(node)
	rv, err := g.VerticalResistanceWithVias(opts.ViaAreaFraction)
	if err != nil {
		return nil, err
	}
	hcOpts := HeatCapacityOptions{ExtraDielectricArea: DefaultExtraDielectricArea}
	if opts.HeatCapacity != nil {
		hcOpts = *opts.HeatCapacity
	}
	cfg := GridConfig{
		Buses:        buses,
		Wires:        wires,
		Ambient:      units.AmbientK,
		RVertical:    rv,
		HeatCapacity: g.HeatCapacity(hcOpts),
		MaxStep:      opts.MaxStep,
		ForceRK4:     opts.UseRK4,
	}
	if opts.Ambient > 0 {
		cfg.Ambient = opts.Ambient
	}
	if !opts.DisableLateral {
		rl, err := g.LateralResistance()
		if err != nil {
			return nil, err
		}
		cfg.RLateral = rl
	}
	if !opts.DisableInterLayer {
		cfg.InterLayerPower = InterLayerRise(node) / rv
	}
	if !opts.DisableBusCoupling && buses > 1 {
		pitches := opts.BusGapPitches
		if pitches <= 0 {
			pitches = DefaultBusGapPitches
		}
		pitch := node.WireWidth + node.Spacing()
		gap := pitches * pitch
		slab := WireGeometry{
			Width:       g.Width,
			Thickness:   g.Thickness,
			Spacing:     gap,
			ILDHeight:   g.ILDHeight,
			KDielectric: g.KDielectric,
		}
		rSlab, err := slab.LateralResistance()
		if err != nil {
			return nil, err
		}
		cfg.RBus = float64(wires) * rSlab
	}
	return NewGrid(cfg)
}

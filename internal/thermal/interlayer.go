package thermal

import (
	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// InterLayerRise evaluates the paper's Eq. 7: the constant temperature
// correction for a global wire due to heat conducted up from the lower
// metal layers, which are assumed to carry current at the node's maximum
// density jmax with coverage factor alpha = 0.5 (Sec. 4.1.2):
//
//	Δθ = Σ_{i=1}^{N} t_ild,i / (k_ild,i * s_i * α_i) *
//	     Σ_{j=i}^{N-1} jmax^2 * ρ_j * α_j * t_j * w_j
//
// The inner sum is the per-unit-length Joule heat of the wires in layers
// i..N-1 (everything under the global layer whose drop across ILD level i
// we are accumulating); the outer factor is ILD level i's thermal
// resistance per unit length over the coupled width s_i*α_i. As printed in
// the paper the inner sum omits the w_j factor, which is dimensionally
// inconsistent (it would yield K/m); restoring w_j gives the
// Chiang/Banerjee/Saraswat-style form the paper cites. See DESIGN.md.
func InterLayerRise(node itrs.Node) float64 {
	stack := node.LayerStack()
	n := len(stack)
	if n == 0 {
		return 0
	}
	j2rho := node.JMax * node.JMax * units.RhoCopper
	// innerFrom[i] = sum over layers i..N-2 (0-based; excludes the top
	// global layer) of jmax^2*rho*alpha_j*t_j*w_j.
	inner := 0.0
	innerFrom := make([]float64, n)
	for j := n - 2; j >= 0; j-- {
		l := stack[j]
		inner += j2rho * l.Coverage * l.Thickness * l.Width
		innerFrom[j] = inner
	}
	dTheta := 0.0
	for i := 0; i < n; i++ {
		l := stack[i]
		r := l.ILDBelow / (node.KILD * l.Spacing * l.Coverage)
		dTheta += r * innerFrom[i]
	}
	return dTheta
}

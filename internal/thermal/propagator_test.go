package thermal

import (
	"math"
	"math/rand"
	"testing"

	"nanobus/internal/itrs"
)

// twinNetworks builds two identical networks from the node, one using the
// exact propagator (the default) and one forced onto the paper's RK4.
func twinNetworks(t *testing.T, wires int) (exact, rk4 *Network) {
	t.Helper()
	exact, err := NewFromNode(itrs.N90, wires, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rk4, err = NewFromNode(itrs.N90, wires, NodeOptions{UseRK4: true})
	if err != nil {
		t.Fatal(err)
	}
	return exact, rk4
}

func randomPower(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() * 20 // W/m, the order of a hot global wire
	}
	return p
}

// TestPropagatorMatchesRK4 drives both integrators through the same random
// piecewise-constant power schedule and requires agreement to well within
// RK4's own truncation error.
func TestPropagatorMatchesRK4(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, wires := range []int{1, 2, 8, 32} {
		exact, rk4 := twinNetworks(t, wires)
		dt := 1e-4 // ~1% of the network time constant: several RK4 substeps
		for step := 0; step < 40; step++ {
			p := randomPower(rng, wires)
			if step%5 == 4 {
				p = nil // idle interval
			}
			if err := exact.Advance(dt, p); err != nil {
				t.Fatal(err)
			}
			if err := rk4.Advance(dt, p); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < wires; i++ {
			a, b := exact.Temp(i), rk4.Temp(i)
			if rise := a - exact.Ambient(); rise < 1e-3 {
				t.Fatalf("wires %d wire %d: no appreciable heating (rise %g K), test is vacuous", wires, i, rise)
			}
			if diff := math.Abs(a - b); diff > 1e-6 {
				t.Errorf("wires %d wire %d: exact %.9f K vs RK4 %.9f K (|Δ| = %g)", wires, i, a, b, diff)
			}
		}
	}
}

// TestPropagatorLongDtConvergesToSteadyState checks that one exact step over
// many time constants lands on the analytic steady state (the e^{-Λdt}
// factors underflow to ~0, leaving θ*).
func TestPropagatorLongDtConvergesToSteadyState(t *testing.T) {
	exact, _ := twinNetworks(t, 16)
	p := make([]float64, 16)
	for i := range p {
		p[i] = 5 + float64(i%3)
	}
	want, err := exact.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// 1 s is ~100 time constants of the slowest mode.
	if err := exact.Advance(1.0, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if diff := math.Abs(exact.Temp(i) - want[i]); diff > 1e-9 {
			t.Errorf("wire %d: long-dt temp %.12f K vs steady state %.12f K", i, exact.Temp(i), want[i])
		}
	}
}

// TestPropagatorExactForAnyDt is the property RK4 cannot offer: one big step
// equals many small steps to near machine precision (the propagator is the
// analytic solution, not an integration).
func TestPropagatorExactForAnyDt(t *testing.T) {
	one, _ := NewFromNode(itrs.N90, 8, NodeOptions{})
	many, _ := NewFromNode(itrs.N90, 8, NodeOptions{})
	p := []float64{3, 0, 7, 7, 1, 0, 4, 2}
	if err := one.Advance(8e-3, p); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if err := many.Advance(1e-3, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		a, b := one.Temp(i), many.Temp(i)
		if diff := math.Abs(a - b); diff > 1e-10*math.Abs(a) {
			t.Errorf("wire %d: one step %.15g K vs eight steps %.15g K", i, a, b)
		}
	}
}

// TestPropagatorNoLateral covers the diagonal (uncoupled) special case used
// by the DisableLateral ablation.
func TestPropagatorNoLateral(t *testing.T) {
	nw, err := NewFromNode(itrs.N90, 4, NodeOptions{DisableLateral: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewFromNode(itrs.N90, 4, NodeOptions{DisableLateral: true, UseRK4: true})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{10, 0, 10, 0}
	for step := 0; step < 10; step++ {
		if err := nw.Advance(2e-4, p); err != nil {
			t.Fatal(err)
		}
		if err := ref.Advance(2e-4, p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if diff := math.Abs(nw.Temp(i) - ref.Temp(i)); diff > 1e-7 {
			t.Errorf("wire %d: uncoupled exact %.9f vs RK4 %.9f", i, nw.Temp(i), ref.Temp(i))
		}
	}
}

// TestNetworkReset verifies Reset restores ambient and that a reset network
// replays a run bit-identically (the propagator cache is retained, which must
// not change results).
func TestNetworkReset(t *testing.T) {
	nw, err := NewFromNode(itrs.N90, 8, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1, 2, 3, 4, 4, 3, 2, 1}
	run := func() []float64 {
		for step := 0; step < 5; step++ {
			if err := nw.Advance(1e-3, p); err != nil {
				t.Fatal(err)
			}
		}
		return nw.Temps(nil)
	}
	first := run()
	nw.Reset()
	for i := 0; i < nw.N(); i++ {
		if nw.Temp(i) != nw.Ambient() {
			t.Fatalf("wire %d at %g K after Reset, ambient is %g K", i, nw.Temp(i), nw.Ambient())
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("wire %d: replay after Reset gives %.17g, first run gave %.17g", i, second[i], first[i])
		}
	}
}

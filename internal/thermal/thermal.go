// Package thermal implements the paper's bus thermal model (Sec. 4): an
// equivalent thermal-RC network with one node per bus wire, vertical
// conduction to the (constant-temperature) layer below through the
// inter-layer dielectric, lateral conduction between adjacent wires through
// the inter-metal dielectric, and a constant inter-layer heating input from
// the metal layers below (Eq. 7).
//
// The nodal heat-balance equations are the paper's Eqs. 3-4:
//
//	edge wires:   Pi = Ci*dθi/dt + (θi-θ0)/Ri + (θi-θnbr)/Rinter
//	middle wires: Pi = Ci*dθi/dt + (θi-θ0)/Ri + (2θi-θi-1-θi+1)/Rinter
//
// with all quantities per unit length of the bus. Within an interval the
// system is linear and time-invariant, so Advance applies the exact affine
// propagator built from the eigendecomposition of the symmetrized
// conductance system (see propagator.go) — machine-precision for any dt.
// The paper's own method, classical fourth-order Runge-Kutta with automatic
// sub-stepping (Sec. 5.3), is kept as a validation fallback behind
// NodeOptions.UseRK4 / Config.ForceRK4. An analytic steady-state solver
// (tridiagonal Thomas algorithm) cross-validates the transients.
package thermal

import (
	"fmt"
	"math"

	"nanobus/internal/itrs"
	"nanobus/internal/linalg"
	"nanobus/internal/ode"
	"nanobus/internal/units"
)

// Network is the thermal-RC network of one bus.
type Network struct {
	n       int
	ambient float64
	// rVert[i] is the vertical thermal resistance of wire i in K*m/W
	// (per unit length).
	rVert []float64
	// rLat[i] is the lateral resistance between wires i and i+1 in K*m/W.
	rLat []float64
	// heatCap[i] is the thermal capacitance in J/(K*m).
	heatCap []float64
	// interPower[i] is the constant inter-layer heating input in W/m
	// (Eq. 7 expressed as a power source; see NewFromNode).
	interPower []float64

	temps []float64
	integ *ode.RK4
	// dynPower is the dynamic (switching) power input during the current
	// Advance call, W/m.
	dynPower []float64

	// Precomputed conduction structure: gVert[i] = 1/rVert[i], gLat[i] =
	// 1/rLat[i] (nil without lateral coupling), and the tridiagonal
	// conductance matrix G used by the steady-state solver and the exact
	// propagator (ssSub/ssDiag/ssSup, Thomas-algorithm layout).
	gVert, gLat          []float64
	ssSub, ssDiag, ssSup []float64

	// useRK4 selects the paper's sub-stepped RK4 integration instead of
	// the exact propagator; prop is built lazily on first exact Advance.
	useRK4 bool
	prop   *propagator
}

// Config assembles a Network directly from per-wire parameters. Most
// callers should use NewFromNode instead.
type Config struct {
	// Wires is the number of bus lines.
	Wires int
	// Ambient is the constant substrate/reference temperature in kelvin.
	Ambient float64
	// RVertical is the per-wire vertical resistance (K*m/W). A single
	// element is broadcast to all wires.
	RVertical []float64
	// RLateral is the wire-to-wire lateral resistance (K*m/W), length
	// Wires-1 or a single broadcast element. Zero-length disables lateral
	// coupling (the pre-paper models' assumption).
	RLateral []float64
	// HeatCapacity is the per-wire thermal capacitance (J/(K*m)), one
	// element broadcast or per wire.
	HeatCapacity []float64
	// InterLayerPower is the constant heating input per wire (W/m);
	// empty means none.
	InterLayerPower []float64
	// MaxStep bounds the RK4 internal step in seconds; zero picks half
	// of the smallest wire time constant.
	MaxStep float64
	// ForceRK4 integrates Advance with the paper's sub-stepped RK4
	// instead of the exact interval propagator (validation fallback; the
	// two agree to integration tolerance, the propagator to machine
	// precision).
	ForceRK4 bool
}

// New builds a Network from the configuration.
func New(cfg Config) (*Network, error) {
	n := cfg.Wires
	if n < 1 {
		return nil, fmt.Errorf("thermal: wires %d < 1", n)
	}
	if cfg.Ambient <= 0 {
		return nil, fmt.Errorf("thermal: non-positive ambient %g K", cfg.Ambient)
	}
	rv, err := broadcast("RVertical", cfg.RVertical, n)
	if err != nil {
		return nil, err
	}
	hc, err := broadcast("HeatCapacity", cfg.HeatCapacity, n)
	if err != nil {
		return nil, err
	}
	var rl []float64
	if len(cfg.RLateral) > 0 && n > 1 {
		rl, err = broadcast("RLateral", cfg.RLateral, n-1)
		if err != nil {
			return nil, err
		}
	}
	for i, v := range rv {
		if v <= 0 {
			return nil, fmt.Errorf("thermal: RVertical[%d] = %g <= 0", i, v)
		}
	}
	for i, v := range hc {
		if v <= 0 {
			return nil, fmt.Errorf("thermal: HeatCapacity[%d] = %g <= 0", i, v)
		}
	}
	for i, v := range rl {
		if v <= 0 {
			return nil, fmt.Errorf("thermal: RLateral[%d] = %g <= 0", i, v)
		}
	}
	ip := make([]float64, n)
	if len(cfg.InterLayerPower) > 0 {
		bip, err := broadcast("InterLayerPower", cfg.InterLayerPower, n)
		if err != nil {
			return nil, err
		}
		copy(ip, bip)
	}
	nw := &Network{
		n:          n,
		ambient:    cfg.Ambient,
		rVert:      rv,
		rLat:       rl,
		heatCap:    hc,
		interPower: ip,
		temps:      make([]float64, n),
		dynPower:   make([]float64, n),
		useRK4:     cfg.ForceRK4,
	}
	for i := range nw.temps {
		nw.temps[i] = cfg.Ambient
	}
	// Precompute the conductance structure shared by the steady-state
	// solver, the RK4 right-hand side and the exact propagator.
	nw.gVert = make([]float64, n)
	for i, r := range rv {
		nw.gVert[i] = 1 / r
	}
	if len(rl) > 0 {
		nw.gLat = make([]float64, n-1)
		for i, r := range rl {
			nw.gLat[i] = 1 / r
		}
	}
	nw.ssSub = make([]float64, n)
	nw.ssDiag = make([]float64, n)
	nw.ssSup = make([]float64, n)
	for i := 0; i < n; i++ {
		nw.ssDiag[i] = nw.gVert[i]
		if nw.gLat != nil {
			if i > 0 {
				nw.ssDiag[i] += nw.gLat[i-1]
				nw.ssSub[i] = -nw.gLat[i-1]
			}
			if i < n-1 {
				nw.ssDiag[i] += nw.gLat[i]
				nw.ssSup[i] = -nw.gLat[i]
			}
		}
	}
	maxStep := cfg.MaxStep
	if maxStep <= 0 {
		maxStep = nw.minTimeConstant() / 2
	}
	nw.integ = ode.NewRK4(maxStep)
	return nw, nil
}

func broadcast(name string, v []float64, n int) ([]float64, error) {
	switch len(v) {
	case n:
		out := make([]float64, n)
		copy(out, v)
		return out, nil
	case 1:
		out := make([]float64, n)
		for i := range out {
			out[i] = v[0]
		}
		return out, nil
	default:
		return nil, fmt.Errorf("thermal: %s has %d elements, want 1 or %d", name, len(v), n)
	}
}

// minTimeConstant returns the smallest Ri*Ci product, which bounds the
// fastest network mode (lateral coupling only speeds modes up, hence the
// conservative /2 factor applied by New).
func (nw *Network) minTimeConstant() float64 {
	minTau := math.Inf(1)
	for i := 0; i < nw.n; i++ {
		reff := nw.rVert[i]
		// Lateral paths reduce the effective resistance.
		if len(nw.rLat) > 0 {
			g := 1 / nw.rVert[i]
			if i > 0 {
				g += 1 / nw.rLat[i-1]
			}
			if i < nw.n-1 {
				g += 1 / nw.rLat[i]
			}
			reff = 1 / g
		}
		if tau := reff * nw.heatCap[i]; tau < minTau {
			minTau = tau
		}
	}
	return minTau
}

// N returns the number of wires.
func (nw *Network) N() int { return nw.n }

// Ambient returns the reference temperature in kelvin.
func (nw *Network) Ambient() float64 { return nw.ambient }

// Temps copies the current wire temperatures (kelvin) into dst and returns
// it; a nil dst allocates.
func (nw *Network) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, nw.n)
	}
	copy(dst, nw.temps)
	return dst
}

// Temp returns wire i's current temperature in kelvin.
func (nw *Network) Temp(i int) float64 { return nw.temps[i] }

// MaxTemp returns the hottest wire's temperature and index.
func (nw *Network) MaxTemp() (float64, int) {
	best, idx := nw.temps[0], 0
	for i, t := range nw.temps {
		if t > best {
			best, idx = t, i
		}
	}
	return best, idx
}

// AvgTemp returns the mean wire temperature.
func (nw *Network) AvgTemp() float64 {
	s := 0.0
	for _, t := range nw.temps {
		s += t
	}
	return s / float64(nw.n)
}

// SetAmbient changes the substrate/reference temperature mid-simulation.
// The paper's model assumes a constant substrate, but notes (Sec. 6, citing
// Skadron et al.) that substrate temperatures swing by ~10 K during
// benchmark execution; stepping the ambient between intervals models that
// combined effect.
func (nw *Network) SetAmbient(k float64) error {
	if k <= 0 {
		return fmt.Errorf("thermal: non-positive ambient %g K", k)
	}
	nw.ambient = k
	return nil
}

// SetTemps overwrites the wire temperatures (e.g. to restart from a saved
// state); the slice length must be N.
func (nw *Network) SetTemps(t []float64) error {
	if len(t) != nw.n {
		return fmt.Errorf("thermal: SetTemps length %d, want %d", len(t), nw.n)
	}
	copy(nw.temps, t)
	return nil
}

// Dim implements ode.System.
func (nw *Network) Dim() int { return nw.n }

// Derivatives implements ode.System: the paper's Eqs. 3-4 rearranged for
// dθ/dt, with the inter-layer heating added as a constant power source.
// Resistances enter as the precomputed conductances, so the inner loop is
// division-free.
func (nw *Network) Derivatives(t float64, y, dydt []float64) {
	n := nw.n
	for i := 0; i < n; i++ {
		p := nw.dynPower[i] + nw.interPower[i]
		q := p - (y[i]-nw.ambient)*nw.gVert[i]
		if nw.gLat != nil {
			if i > 0 {
				q -= (y[i] - y[i-1]) * nw.gLat[i-1]
			}
			if i < n-1 {
				q -= (y[i] - y[i+1]) * nw.gLat[i]
			}
		}
		dydt[i] = q / nw.heatCap[i]
	}
}

// Advance moves the network over dt seconds with the given per-wire
// dynamic power (W/m, piecewise constant over the interval — the paper's
// 100K-cycle interval power). power may be nil for an idle interval.
//
// By default the step is the exact affine propagator (see propagator.go):
// one tridiagonal steady-state solve plus a matvec-scale-matvec through the
// precomputed eigenbasis, exact to machine precision for any dt. With
// UseRK4/ForceRK4 set the paper's sub-stepped RK4 integration runs instead.
func (nw *Network) Advance(dt float64, power []float64) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive dt %g", dt)
	}
	if power == nil {
		for i := range nw.dynPower {
			nw.dynPower[i] = 0
		}
	} else {
		if len(power) != nw.n {
			return fmt.Errorf("thermal: power length %d, want %d", len(power), nw.n)
		}
		for i, p := range power {
			if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
				return fmt.Errorf("thermal: invalid power %g on wire %d", p, i)
			}
		}
		copy(nw.dynPower, power)
	}
	if nw.useRK4 {
		_, err := nw.integ.Integrate(nw, 0, dt, nw.temps)
		return err
	}
	if nw.prop == nil {
		p, err := newPropagator(nw)
		if err != nil {
			return err
		}
		nw.prop = p
	}
	return nw.prop.advance(nw, dt)
}

// Reset returns every wire to the current ambient temperature. The network
// structure, the precomputed conductances and the spectral propagator are
// kept, so sweep drivers can reuse one network across runs for free.
func (nw *Network) Reset() {
	for i := range nw.temps {
		nw.temps[i] = nw.ambient
	}
}

// SteadyState returns the equilibrium temperatures for a constant per-wire
// dynamic power (W/m, nil meaning zero), solving the tridiagonal balance
//
//	(θi-θ0)/Ri + Σlat (θi-θnbr)/Rinter = Pi + Pinter,i
//
// with the Thomas algorithm. It does not modify the network state.
func (nw *Network) SteadyState(power []float64) ([]float64, error) {
	n := nw.n
	if power != nil && len(power) != n {
		return nil, fmt.Errorf("thermal: power length %d, want %d", len(power), n)
	}
	out := make([]float64, n)
	err := nw.steadyInto(power, make([]float64, n), make([]float64, n), make([]float64, n), out)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// steadyInto is the allocation-free steady-state solve over the
// precomputed conductance matrix: rhs, cp and dp are scratch, out receives
// the temperatures. The propagator calls this once per Advance.
func (nw *Network) steadyInto(power, rhs, cp, dp, out []float64) error {
	for i := 0; i < nw.n; i++ {
		r := nw.interPower[i] + nw.gVert[i]*nw.ambient
		if power != nil {
			r += power[i]
		}
		rhs[i] = r
	}
	return linalg.SolveTridiagonalInto(nw.ssSub, nw.ssDiag, nw.ssSup, rhs, cp, dp, out)
}

// WireGeometry bundles the geometric and material inputs of Eqs. 5-6.
type WireGeometry struct {
	// Width and Thickness are the wire cross-section in meters.
	Width, Thickness float64
	// Spacing is the inter-wire spacing in meters.
	Spacing float64
	// ILDHeight is the dielectric thickness below the wire in meters.
	ILDHeight float64
	// KDielectric is the dielectric thermal conductivity in W/(m*K),
	// used for both the ILD (vertical) and IMD (lateral) paths as in the
	// paper's Table 1.
	KDielectric float64
}

// VerticalResistance evaluates Eq. 6: the spreading term plus the
// rectangular-flow term, per unit length (K*m/W).
func (g WireGeometry) VerticalResistance() (float64, error) {
	if g.Width <= 0 || g.Thickness <= 0 || g.Spacing < 0 || g.ILDHeight <= 0 || g.KDielectric <= 0 {
		return 0, fmt.Errorf("thermal: invalid wire geometry %+v", g)
	}
	rspr := math.Log((g.Width+g.Spacing)/g.Width) / (2 * g.KDielectric)
	rect := (g.ILDHeight - 0.5*g.Spacing) / (g.KDielectric * (g.Width + g.Spacing))
	if rect < 0 {
		// Very thin ILD relative to spacing: the trapezoidal spreading
		// consumes the full height; clamp the rectangular term.
		rect = 0
	}
	return rspr + rect, nil
}

// VerticalResistanceWithVias augments Eq. 6 with a parallel conduction
// path through vias. The paper's Sec. 1 notes that "long via separations
// in upper metal layers contribute to higher average wire temperatures
// (vias are normally better thermal conductors than surrounding low-K
// dielectrics)": copper vias short-circuit part of the ILD. viaFraction
// is the fraction of the wire's footprint area occupied by via metal
// (0 = no vias, the plain Eq. 6 value; realistic sparse global vias are
// 1e-3..1e-2).
func (g WireGeometry) VerticalResistanceWithVias(viaFraction float64) (float64, error) {
	if viaFraction < 0 || viaFraction >= 1 {
		return 0, fmt.Errorf("thermal: via fraction %g outside [0,1)", viaFraction)
	}
	base, err := g.VerticalResistance()
	if err != nil {
		return 0, err
	}
	if viaFraction == 0 { //nanolint:ignore floateq zero means no via path is configured
		return base, nil
	}
	// Parallel via path per unit length: kCu * (footprint width * f) / t_ild.
	gVia := units.KCopper * (g.Width + g.Spacing) * viaFraction / g.ILDHeight
	return 1 / (1/base + gVia), nil
}

// LateralResistance evaluates the paper's Sec. 4.1.1 inter-wire resistance
// Rinter = s/(kimd*t), per unit length (K*m/W).
func (g WireGeometry) LateralResistance() (float64, error) {
	if g.Spacing <= 0 || g.Thickness <= 0 || g.KDielectric <= 0 {
		return 0, fmt.Errorf("thermal: invalid lateral geometry %+v", g)
	}
	return g.Spacing / (g.KDielectric * g.Thickness), nil
}

// HeatCapacityOptions control the per-wire thermal capacitance.
type HeatCapacityOptions struct {
	// ExtraDielectricArea is the effective cross-sectional area (m^2) of
	// surrounding dielectric whose heat mass is lumped with the wire.
	// The paper's lumped Ci = Cs*t*w alone yields microsecond time
	// constants, inconsistent with the multi-millisecond transients its
	// own Figs. 4-5 show; physically, the slow component comes from heat
	// diffusing into the dielectric (diffusion length ~50 um over the
	// plotted intervals). DefaultExtraDielectricArea reproduces the
	// paper's time scales; set to 0 for the strict wire-only reading.
	ExtraDielectricArea float64
}

// DefaultExtraDielectricArea is the calibrated effective dielectric area:
// a ~50 um thermal diffusion cloud around the wire, giving the bus the
// ~10 ms time constant implied by the paper's Figs. 4-5.
const DefaultExtraDielectricArea = 2.5e-9 // m^2

// CvDielectric is the volumetric heat capacity of SiO2-class dielectrics
// in J/(m^3*K) (2200 kg/m^3 * 730 J/(kg*K)).
const CvDielectric = 2200.0 * 730.0

// HeatCapacity returns Ci = Cs*t*w (Sec. 4.1) plus the configured
// dielectric heat mass, in J/(K*m).
func (g WireGeometry) HeatCapacity(opts HeatCapacityOptions) float64 {
	return units.CvCopper*g.Thickness*g.Width + CvDielectric*opts.ExtraDielectricArea
}

// NodeGeometry extracts the WireGeometry of a technology node's global
// layer.
func NodeGeometry(node itrs.Node) WireGeometry {
	return WireGeometry{
		Width:       node.WireWidth,
		Thickness:   node.WireThickness,
		Spacing:     node.Spacing(),
		ILDHeight:   node.ILDHeight,
		KDielectric: node.KILD,
	}
}

// NodeOptions configure NewFromNode.
type NodeOptions struct {
	// Ambient overrides the paper's 318.15 K when positive.
	Ambient float64
	// HeatCapacity options; the zero value uses
	// DefaultExtraDielectricArea.
	HeatCapacity *HeatCapacityOptions
	// DisableLateral removes inter-wire conduction (the ablation the
	// paper runs against prior models).
	DisableLateral bool
	// DisableInterLayer removes the Eq. 7 heating input.
	DisableInterLayer bool
	// ViaAreaFraction adds a parallel copper-via conduction path through
	// the ILD (see VerticalResistanceWithVias). Zero means no vias — the
	// paper's pessimistic upper-layer assumption.
	ViaAreaFraction float64
	// MaxStep bounds the RK4 internal step; zero auto-selects.
	MaxStep float64
	// UseRK4 selects the paper's sub-stepped RK4 integration instead of
	// the exact interval propagator (validation fallback).
	UseRK4 bool
}

// NewFromNode builds the thermal network of a wires-wide global bus on the
// given technology node, with Eq. 6 vertical resistances, Sec. 4.1.1
// lateral resistances, and the Eq. 7 inter-layer heating expressed as the
// equivalent constant power Δθ/Ri into each wire (so the network warms from
// ambient toward ambient+Δθ with its natural time constant, as in the
// paper's Fig. 4 transients).
func NewFromNode(node itrs.Node, wires int, opts NodeOptions) (*Network, error) {
	g := NodeGeometry(node)
	rv, err := g.VerticalResistanceWithVias(opts.ViaAreaFraction)
	if err != nil {
		return nil, err
	}
	hcOpts := HeatCapacityOptions{ExtraDielectricArea: DefaultExtraDielectricArea}
	if opts.HeatCapacity != nil {
		hcOpts = *opts.HeatCapacity
	}
	cfg := Config{
		Wires:        wires,
		Ambient:      units.AmbientK,
		RVertical:    []float64{rv},
		HeatCapacity: []float64{g.HeatCapacity(hcOpts)},
		MaxStep:      opts.MaxStep,
		ForceRK4:     opts.UseRK4,
	}
	if opts.Ambient > 0 {
		cfg.Ambient = opts.Ambient
	}
	if !opts.DisableLateral {
		rl, err := g.LateralResistance()
		if err != nil {
			return nil, err
		}
		cfg.RLateral = []float64{rl}
	}
	if !opts.DisableInterLayer {
		dTheta := InterLayerRise(node)
		cfg.InterLayerPower = []float64{dTheta / rv}
	}
	return New(cfg)
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic returns the libpanic analyzer: panic(...) sites in internal/
// library packages that are reachable from an exported API. Library code
// should return errors; panics are acceptable only in cmd/ main packages,
// test helpers, and Must*-style helpers whose documented contract is to
// panic.
func LibPanic() *Analyzer {
	return &Analyzer{
		Name: "libpanic",
		Doc: "flags panic(...) reachable from exported library APIs in " +
			"internal/ packages; library code should return errors",
		Run: runLibPanic,
	}
}

func runLibPanic(pass *Pass) error {
	if !strings.Contains(pass.Pkg.ImportPath, "/internal/") {
		return nil
	}
	info := pass.Pkg.Info
	cg := pass.Pkg.CallGraph()
	reachedVia := cg.Reachable()

	for _, fn := range cg.FuncsInOrder() {
		label, reachable := reachedVia[fn]
		if !reachable || isMustHelper(fn.Name()) {
			continue
		}
		ast.Inspect(cg.Funcs[fn].Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(id.Pos(),
					"panic in %s is reachable from %s; library code should return an error",
					fn.Name(), label)
			}
			return true
		})
	}
	return nil
}

// isMustHelper reports whether the function follows the Must* convention,
// whose documented contract is to panic on error.
func isMustHelper(name string) bool {
	return strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must")
}

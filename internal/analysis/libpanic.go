package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LibPanic returns the libpanic analyzer: panic(...) sites in internal/
// library packages that are reachable from an exported API. Library code
// should return errors; panics are acceptable only in cmd/ main packages,
// test helpers, and Must*-style helpers whose documented contract is to
// panic.
func LibPanic() *Analyzer {
	return &Analyzer{
		Name: "libpanic",
		Doc: "flags panic(...) reachable from exported library APIs in " +
			"internal/ packages; library code should return errors",
		Run: runLibPanic,
	}
}

func runLibPanic(pass *Pass) error {
	if !strings.Contains(pass.Pkg.ImportPath, "/internal/") {
		return nil
	}
	info := pass.Pkg.Info

	// Collect function declarations, panic sites, and a conservative
	// intra-package call graph: any use of a package function inside
	// another's body (call or function value) is an edge.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	panics := map[*types.Func][]ast.Node{}
	edges := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := info.Uses[id].(type) {
			case *types.Builtin:
				if obj.Name() == "panic" {
					panics[fn] = append(panics[fn], id)
				}
			case *types.Func:
				if _, local := decls[obj]; local {
					edges[fn] = append(edges[fn], obj)
				}
			}
			return true
		})
	}

	// Entry points: exported functions and methods, init functions, and
	// functions referenced from package-level variable initializers (those
	// run on import, before any caller can recover).
	type entry struct {
		fn    *types.Func
		label string
	}
	var entries []entry
	for fn, fd := range decls {
		if fd.Name.IsExported() {
			entries = append(entries, entry{fn, "exported " + fn.Name()})
		} else if fd.Name.Name == "init" && fd.Recv == nil {
			entries = append(entries, entry{fn, "package init"})
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					ast.Inspect(val, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						if fn, ok := info.Uses[id].(*types.Func); ok {
							if _, local := decls[fn]; local {
								entries = append(entries, entry{fn, "package variable initialisation"})
							}
						}
						return true
					})
				}
			}
		}
	}

	// BFS, remembering which entry first reaches each function.
	reachedVia := map[*types.Func]string{}
	var queue []*types.Func
	for _, e := range entries {
		if _, ok := reachedVia[e.fn]; !ok {
			reachedVia[e.fn] = e.label
			queue = append(queue, e.fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range edges[fn] {
			if _, ok := reachedVia[callee]; !ok {
				reachedVia[callee] = reachedVia[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, sites := range panics {
		label, reachable := reachedVia[fn]
		if !reachable || isMustHelper(fn.Name()) {
			continue
		}
		for _, site := range sites {
			pass.Reportf(site.Pos(),
				"panic in %s is reachable from %s; library code should return an error",
				fn.Name(), label)
		}
	}
	return nil
}

// isMustHelper reports whether the function follows the Must* convention,
// whose documented contract is to panic on error.
func isMustHelper(name string) bool {
	return strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must")
}

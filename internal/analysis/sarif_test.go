package analysis

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestWriteSARIFStructure validates the emitted document against the
// SARIF 2.1.0 shape GitHub code scanning requires, using the suppress
// fixture because it produces ordinary findings, suppressed findings,
// and both pseudo-rules (nanolint, unused-suppression) in one run.
func TestWriteSARIFStructure(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	findings, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, All(), root); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name    string `json:"name"`
					Version string `json:"version"`
					Rules   []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind          string `json:"kind"`
					Justification string `json:"justification"`
				} `json:"suppressions"`
			} `json:"results"`
			OriginalURIBaseIDs map[string]struct {
				URI string `json:"uri"`
			} `json:"originalUriBaseIds"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}

	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q", doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "nanolint" || run.Tool.Driver.Version == "" {
		t.Errorf("driver = %q %q", run.Tool.Driver.Name, run.Tool.Driver.Version)
	}
	if len(run.Tool.Driver.Rules) < len(All()) {
		t.Errorf("rules = %d, want at least %d", len(run.Tool.Driver.Rules), len(All()))
	}
	if len(run.Results) != len(findings) {
		t.Errorf("results = %d, want %d (one per finding)", len(run.Results), len(findings))
	}
	if _, ok := run.OriginalURIBaseIDs["%SRCROOT%"]; !ok {
		t.Error("originalUriBaseIds missing %SRCROOT%")
	}

	var sawSuppressed, sawUnused bool
	for i, res := range run.Results {
		// Every result's ruleIndex must point at the rule with its ruleId.
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Fatalf("result %d ruleIndex %d out of range", i, res.RuleIndex)
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("result %d: ruleIndex resolves to %q, ruleId is %q", i, got, res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if filepath.IsAbs(loc.ArtifactLocation.URI) || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("result %d URI %q is not a relative slash path", i, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result %d startLine = %d", i, loc.Region.StartLine)
		}
		if len(res.Suppressions) > 0 {
			sawSuppressed = true
			if res.Suppressions[0].Kind != "inSource" {
				t.Errorf("suppression kind = %q, want inSource", res.Suppressions[0].Kind)
			}
			if res.Suppressions[0].Justification == "" {
				t.Error("suppression has no justification")
			}
		}
		if res.RuleID == "unused-suppression" {
			sawUnused = true
			if res.Level != "note" {
				t.Errorf("unused-suppression level = %q, want note", res.Level)
			}
		} else if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
	}
	if !sawSuppressed {
		t.Error("no suppressed result emitted from the suppress fixture")
	}
	if !sawUnused {
		t.Error("no unused-suppression result emitted from the suppress fixture")
	}
}

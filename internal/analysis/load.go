package analysis

import (
	"bufio"
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package, the unit handed to
// analyzers. Test files (*_test.go) are excluded: the rules target library
// and command code, and test expectations legitimately re-type constants
// and compare exact floats.
type Package struct {
	// ImportPath is the full import path, e.g. "nanobus/internal/energy".
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset positions all files of this package.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolution results.
	Info *types.Info

	// cg is the lazily built, cached intra-package call graph shared by
	// reachability-based passes; see Package.CallGraph.
	cgOnce sync.Once
	cg     *CallGraph
}

// PathTail returns the last element of the package's import path.
func (p *Package) PathTail() string {
	if i := strings.LastIndexByte(p.ImportPath, '/'); i >= 0 {
		return p.ImportPath[i+1:]
	}
	return p.ImportPath
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-local imports are resolved from source under the
// module root, and standard-library imports are type-checked from GOROOT
// source (importer.ForCompiler "source"), so no export data or network
// access is needed.
type Loader struct {
	fset       *token.FileSet
	modulePath string
	moduleDir  string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		modulePath: modPath,
		moduleDir:  abs,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// ModuleDir returns the loader's module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

func modulePathOf(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", dir)
}

// LoadDir loads the package rooted at dir, which may be absolute or
// relative to the module directory.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.moduleDir, dir)
	}
	abs = filepath.Clean(abs)
	rel, err := filepath.Rel(l.moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleDir)
	}
	path := l.modulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, &NoGoFilesError{Dir: dir, ImportPath: path}
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module-local paths load from source
// under the module root, everything else falls back to the GOROOT source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := l.moduleDir
		if rel != "" {
			dir = filepath.Join(l.moduleDir, filepath.FromSlash(rel))
		}
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ErrNoGoFiles marks a directory that contains no analyzable Go sources.
// Wrap-test with errors.Is; the concrete *NoGoFilesError carries the
// directory and import path.
var ErrNoGoFiles = errors.New("no Go files")

// NoGoFilesError reports a package directory with zero non-test Go files
// under the default build configuration. It is returned by LoadDir (and
// the importer) instead of a bare parse error so drivers can tell "you
// named an empty directory" apart from genuinely broken source: test
// files, hidden files, and files excluded by //go:build constraints do
// not count.
type NoGoFilesError struct {
	// Dir is the absolute directory that was loaded.
	Dir string
	// ImportPath is the import path the directory resolves to.
	ImportPath string
}

func (e *NoGoFilesError) Error() string {
	return fmt.Sprintf("analysis: package %s (%s) has no non-test Go files under the default build configuration; "+
		"nanolint analyzes library and command sources only — name a directory containing at least one non-test .go file",
		e.ImportPath, e.Dir)
}

// Unwrap lets errors.Is(err, ErrNoGoFiles) identify the condition.
func (e *NoGoFilesError) Unwrap() error { return ErrNoGoFiles }

// goFilesIn lists the non-test Go files of dir that are included under
// the default build configuration, sorted. Files excluded by a
// //go:build constraint (e.g. the nanobus_nofault no-op variant of
// faultinject) must be skipped exactly as `go build ./...` skips them:
// type-checking both variants of a gated package at once would report
// phantom redeclaration errors.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := buildTagOK(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// releaseTagRE matches go1.N release tags, which the go tool satisfies
// for every N up to the toolchain's own minor version. The linter always
// runs under the module's own toolchain, so accepting them all matches
// what it compiles.
var releaseTagRE = regexp.MustCompile(`^go1\.[0-9]+$`)

// defaultTag evaluates one build tag under the default configuration:
// the host GOOS/GOARCH, the gc compiler, the unix meta-tag, and release
// tags. Custom tags (nanobus_nofault, race, integration, ...) are unset.
func defaultTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "unix":
		switch runtime.GOOS {
		case "linux", "darwin", "freebsd", "netbsd", "openbsd", "solaris", "aix", "dragonfly":
			return true
		}
	}
	return releaseTagRE.MatchString(tag)
}

// buildTagOK reports whether the file's //go:build constraint (if any)
// is satisfied under defaultTag. Constraints must precede the package
// clause, so scanning stops at the first non-comment line.
func buildTagOK(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer func() {
		//nanolint:ignore droppederr the file was only read; nothing to recover from a close failure
		_ = f.Close()
	}()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if constraint.IsGoBuild(line) {
			expr, err := constraint.Parse(line)
			if err != nil {
				// Malformed constraint: include the file and let the
				// type-checker report it with position information.
				return true, nil
			}
			return expr.Eval(defaultTag), nil
		}
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "/*") {
			continue
		}
		break
	}
	return true, sc.Err()
}

// ExpandPatterns resolves go-style package patterns relative to the module
// directory: "dir/..." walks dir recursively collecting every directory
// that contains non-test Go files (skipping testdata, results, and hidden
// directories, like the go tool), while a plain pattern names one package
// directory — so testdata fixture packages can still be named explicitly.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" || root == "." {
			root = l.moduleDir
		} else if !filepath.IsAbs(root) {
			root = filepath.Join(l.moduleDir, root)
		}
		if !recursive {
			add(filepath.Clean(root))
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || name == "results" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			files, err := goFilesIn(p)
			if err != nil {
				return err
			}
			if len(files) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: expanding %q: %w", pat, err)
		}
	}
	return dirs, nil
}

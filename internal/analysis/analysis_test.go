package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks one package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// parseWantMarkers scans a fixture directory for trailing "// want <rules>"
// markers and returns the expected set of "file:line:rule" keys.
func parseWantMarkers(t *testing.T, name string) map[string]bool {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		ruleNames := map[string]bool{}
		for _, az := range All() {
			ruleNames[az.Name] = true
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			// Prose in doc comments may quote the marker syntax; a real
			// marker lists only rule names.
			fields := strings.Fields(marker)
			real := len(fields) > 0
			for _, f := range fields {
				if !ruleNames[f] {
					real = false
				}
			}
			if !real {
				continue
			}
			for _, rule := range fields {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, rule)] = true
			}
		}
	}
	return want
}

// findingKeys renders findings in the marker key format.
func findingKeys(findings []Finding) map[string]bool {
	keys := map[string]bool{}
	for _, f := range findings {
		keys[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
	}
	return keys
}

func diffKeys(t *testing.T, got, want map[string]bool) {
	t.Helper()
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, k := range missing {
		t.Errorf("expected finding not reported: %s", k)
	}
	for _, k := range extra {
		t.Errorf("unexpected finding: %s", k)
	}
}

// TestAnalyzersOnFixtures runs every analyzer over each golden fixture
// package and compares the unsuppressed findings against the fixture's
// "// want" markers.
func TestAnalyzersOnFixtures(t *testing.T) {
	for _, name := range []string{"energy", "droppederr", "floateq", "libpanic"} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			findings, err := Run([]*Package{pkg}, All())
			if err != nil {
				t.Fatal(err)
			}
			diffKeys(t, findingKeys(Unsuppressed(findings)), parseWantMarkers(t, name))
		})
	}
}

// TestSuppressionDirectives exercises the directive fixture: same-line and
// line-above placement suppress with their reason; malformed directives are
// findings themselves and suppress nothing; a directive naming the wrong
// rule suppresses nothing.
func TestSuppressionDirectives(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	findings, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	var suppressedReasons []string
	var unsuppressedDropped, malformed int
	for _, f := range findings {
		switch {
		case f.Rule == "droppederr" && f.Suppressed:
			suppressedReasons = append(suppressedReasons, f.SuppressReason)
		case f.Rule == "droppederr":
			unsuppressedDropped++
		case f.Rule == "nanolint":
			malformed++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	sort.Strings(suppressedReasons)
	wantReasons := []string{"line-above fixture justification", "same-line fixture justification"}
	if len(suppressedReasons) != len(wantReasons) {
		t.Fatalf("suppressed reasons = %q, want %q", suppressedReasons, wantReasons)
	}
	for i, want := range wantReasons {
		if suppressedReasons[i] != want {
			t.Errorf("suppressed reason %d = %q, want %q", i, suppressedReasons[i], want)
		}
	}
	// MissingReason, WrongVerb, and WrongRule all leave their droppederr
	// finding standing.
	if unsuppressedDropped != 3 {
		t.Errorf("unsuppressed droppederr findings = %d, want 3", unsuppressedDropped)
	}
	// The missing-reason and wrong-verb directives are malformed.
	if malformed != 2 {
		t.Errorf("malformed directive findings = %d, want 2", malformed)
	}
}

// TestByName checks rule-subset resolution.
func TestByName(t *testing.T) {
	azs, err := ByName([]string{"floateq", "libpanic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(azs) != 2 || azs[0].Name != "floateq" || azs[1].Name != "libpanic" {
		t.Errorf("ByName returned %v", azs)
	}
	if _, err := ByName([]string{"nosuchrule"}); err == nil {
		t.Error("ByName(nosuchrule) returned nil error")
	}
}

// TestRepoClean is the self-gate: the module's own packages must carry zero
// unsuppressed findings. If this fails, fix the offending code or add a
// justified //nanolint:ignore directive.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
}

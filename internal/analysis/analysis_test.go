package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks one package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// parseWantMarkers scans a fixture directory for trailing "// want <rules>"
// markers and returns the expected set of "file:line:rule" keys.
func parseWantMarkers(t *testing.T, name string) map[string]bool {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		ruleNames := map[string]bool{}
		for _, az := range All() {
			ruleNames[az.Name] = true
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, marker, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			// Prose in doc comments may quote the marker syntax; a real
			// marker lists only rule names.
			fields := strings.Fields(marker)
			real := len(fields) > 0
			for _, f := range fields {
				if !ruleNames[f] {
					real = false
				}
			}
			if !real {
				continue
			}
			for _, rule := range fields {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, rule)] = true
			}
		}
	}
	return want
}

// findingKeys renders findings in the marker key format.
func findingKeys(findings []Finding) map[string]bool {
	keys := map[string]bool{}
	for _, f := range findings {
		keys[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)] = true
	}
	return keys
}

func diffKeys(t *testing.T, got, want map[string]bool) {
	t.Helper()
	var missing, extra []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, k := range missing {
		t.Errorf("expected finding not reported: %s", k)
	}
	for _, k := range extra {
		t.Errorf("unexpected finding: %s", k)
	}
}

// TestAnalyzersOnFixtures runs every analyzer over each golden fixture
// package and compares the unsuppressed findings against the fixture's
// "// want" markers.
func TestAnalyzersOnFixtures(t *testing.T) {
	for _, name := range []string{
		"energy", "droppederr", "floateq", "libpanic",
		"hotalloc", "maporder", "wallclock", "unsafeaudit", "core",
	} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			findings, err := Run([]*Package{pkg}, All())
			if err != nil {
				t.Fatal(err)
			}
			diffKeys(t, findingKeys(Unsuppressed(findings)), parseWantMarkers(t, name))
		})
	}
}

// TestSuppressionDirectives exercises the directive fixture: same-line and
// line-above placement suppress with their reason; one comma-separated
// directive covers two rules on a line; malformed directives (missing
// reason, wrong verb, unknown rule) are findings themselves and suppress
// nothing; well-formed directives that match nothing are reported as
// unused-suppression.
func TestSuppressionDirectives(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	findings, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatal(err)
	}
	var suppressedReasons []string
	var suppressedFloat, unsuppressedDropped, malformed, unused int
	for _, f := range findings {
		switch {
		case f.Rule == "droppederr" && f.Suppressed:
			suppressedReasons = append(suppressedReasons, f.SuppressReason)
		case f.Rule == "floateq" && f.Suppressed:
			suppressedFloat++
		case f.Rule == "droppederr":
			unsuppressedDropped++
		case f.Rule == "nanolint":
			malformed++
		case f.Rule == "unused-suppression":
			unused++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	sort.Strings(suppressedReasons)
	wantReasons := []string{
		"line-above fixture justification",
		"multi-rule fixture justification",
		"same-line fixture justification",
	}
	if len(suppressedReasons) != len(wantReasons) {
		t.Fatalf("suppressed reasons = %q, want %q", suppressedReasons, wantReasons)
	}
	for i, want := range wantReasons {
		if suppressedReasons[i] != want {
			t.Errorf("suppressed reason %d = %q, want %q", i, suppressedReasons[i], want)
		}
	}
	// The MultiRule directive also covers the floateq finding on its line.
	if suppressedFloat != 1 {
		t.Errorf("suppressed floateq findings = %d, want 1", suppressedFloat)
	}
	// MissingReason, WrongVerb, WrongRule, UnknownRule, and StaleIgnore all
	// leave their droppederr finding standing.
	if unsuppressedDropped != 5 {
		t.Errorf("unsuppressed droppederr findings = %d, want 5", unsuppressedDropped)
	}
	// The missing-reason, wrong-verb, and unknown-rule directives are
	// malformed.
	if malformed != 3 {
		t.Errorf("malformed directive findings = %d, want 3", malformed)
	}
	// WrongRule's floateq directive and the stale directive above the var
	// suppress nothing.
	if unused != 2 {
		t.Errorf("unused-suppression findings = %d, want 2", unused)
	}
}

// TestRunParallelDeterministic runs the full rule set over every fixture
// package at several worker counts and requires byte-identical findings:
// the parallel driver must not let scheduling order leak into output.
func TestRunParallelDeterministic(t *testing.T) {
	names := []string{
		"energy", "droppederr", "floateq", "libpanic", "suppress",
		"hotalloc", "maporder", "wallclock", "unsafeaudit", "core",
	}
	var pkgs []*Package
	for _, name := range names {
		pkgs = append(pkgs, loadFixture(t, name))
	}
	render := func(fs []Finding) string {
		var b strings.Builder
		for _, f := range fs {
			fmt.Fprintf(&b, "%s suppressed=%v\n", f, f.Suppressed)
		}
		return b.String()
	}
	sequential, err := RunParallel(pkgs, All(), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := render(sequential)
	if want == "" {
		t.Fatal("fixtures produced no findings; determinism check is vacuous")
	}
	for _, workers := range []int{0, 2, 7} {
		got, err := RunParallel(pkgs, All(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != want {
			t.Errorf("workers=%d findings differ from sequential run", workers)
		}
	}
	// Sort contract: (file, line, column, rule), non-decreasing.
	for i := 1; i < len(sequential); i++ {
		a, b := sequential[i-1], sequential[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Rule)
		kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Rule)
		if ka > kb {
			t.Fatalf("findings out of order at %d: %s before %s", i, a, b)
		}
	}
}

// TestByName checks rule-subset resolution.
func TestByName(t *testing.T) {
	azs, err := ByName([]string{"floateq", "libpanic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(azs) != 2 || azs[0].Name != "floateq" || azs[1].Name != "libpanic" {
		t.Errorf("ByName returned %v", azs)
	}
	if _, err := ByName([]string{"nosuchrule"}); err == nil {
		t.Error("ByName(nosuchrule) returned nil error")
	}
}

// TestRepoClean is the self-gate: the module's own packages must carry zero
// unsuppressed findings. If this fails, fix the offending code or add a
// justified //nanolint:ignore directive.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Unsuppressed(findings) {
		t.Errorf("%s", f)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the wall-clock reads forbidden in deterministic
// code: the same inputs must produce the same outputs across a
// checkpoint/restore boundary, and the clock never replays.
var wallclockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// randConstructors are the package-level math/rand functions that build
// an explicitly seeded private source — the sanctioned escape hatch
// (internal/trace.Synth seeds one from its config).
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// WallClock returns the wallclock analyzer: nondeterminism sources in the
// replay-deterministic packages (core, energy, thermal, expt, and
// checkpoint.go files anywhere). Three classes are flagged:
//
//   - wall-clock reads (time.Now/Since/Until)
//   - package-level math/rand calls, which draw from the shared,
//     time-seeded global source; rand.New(rand.NewSource(seed)) with a
//     config-carried seed is the sanctioned form
//   - select over two or more channel cases, which the runtime resolves
//     pseudo-randomly when several are ready
func WallClock() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc: "flags time.Now, unseeded global math/rand, and multi-way select " +
			"in replay-deterministic packages (core, energy, thermal, expt, " +
			"checkpoint.go files)",
		Run: runWallClock,
	}
}

func runWallClock(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(file.Pos()).Filename
		if !deterministicFile(pass, filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, node)
				if fn == nil {
					return true
				}
				if wallclockFuncs[fn.FullName()] {
					pass.Reportf(node.Pos(),
						"%s reads the wall clock in a replay-deterministic package; "+
							"derive timing from cycle counts or carry it in the config", fn.FullName())
					return true
				}
				if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil &&
					(pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2") &&
					!randConstructors[fn.Name()] {
					pass.Reportf(node.Pos(),
						"%s draws from the global math/rand source in a replay-deterministic package; "+
							"use rand.New(rand.NewSource(seed)) with a config-carried seed", fn.FullName())
				}
			case *ast.SelectStmt:
				comm := 0
				for _, clause := range node.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(node.Pos(),
						"select over %d channels resolves pseudo-randomly when several are ready; "+
							"deterministic code needs a fixed service order", comm)
				}
			}
			return true
		})
	}
	return nil
}

package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document model — just the subset GitHub code scanning
// consumes. Field order follows the spec's reading order so the emitted
// JSON diffs cleanly between runs.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool           `json:"tool"`
	Results            []sarifResult       `json:"results"`
	OriginalURIBaseIDs map[string]sarifURI `json:"originalUriBaseIds,omitempty"`
	ColumnKind         string              `json:"columnKind"`
}

type sarifURI struct {
	URI string `json:"uri"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string          `json:"id"`
	ShortDescription sarifMessage    `json:"shortDescription"`
	DefaultConfig    sarifRuleConfig `json:"defaultConfiguration"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// nanolintVersion is stamped into the SARIF tool descriptor. Bump when a
// rule's semantics change enough that old baselines stop being comparable.
const nanolintVersion = "2.0.0"

// WriteSARIF renders findings as a SARIF 2.1.0 log suitable for GitHub
// code scanning upload. srcRoot is the module root used to relativise
// file paths; findings outside it keep their absolute path. The rules
// array covers every analyzer plus any pseudo-rules ("nanolint",
// "unused-suppression") that actually appear in the findings, so every
// result's ruleId resolves to a ruleIndex.
func WriteSARIF(w io.Writer, findings []Finding, azs []*Analyzer, srcRoot string) error {
	rules := make([]sarifRule, 0, len(azs)+2)
	index := map[string]int{}
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
			DefaultConfig:    sarifRuleConfig{Level: "error"},
		})
	}
	for _, az := range azs {
		addRule(az.Name, az.Doc)
	}
	for _, f := range findings {
		switch f.Rule {
		case "nanolint":
			addRule("nanolint", "malformed //nanolint directive")
		case "unused-suppression":
			addRule("unused-suppression", "suppression directive that no finding matched; delete it or fix the rule list")
		default:
			// Defensive: an unknown rule still gets an entry rather than a
			// dangling ruleIndex.
			addRule(f.Rule, f.Rule)
		}
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		baseID := ""
		if srcRoot != "" {
			if rel, err := filepath.Rel(srcRoot, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
				baseID = "%SRCROOT%"
			}
		}
		level := "error"
		if f.Rule == "unused-suppression" {
			level = "note"
		}
		res := sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     level,
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: baseID,
					},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		}
		if f.Suppressed {
			res.Suppressions = []sarifSuppression{{
				Kind:          "inSource",
				Justification: f.SuppressReason,
			}}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:    "nanolint",
				Version: nanolintVersion,
				Rules:   rules,
			}},
			Results:    results,
			ColumnKind: "utf16CodeUnits",
		}},
	}
	if srcRoot != "" {
		log.Runs[0].OriginalURIBaseIDs = map[string]sarifURI{
			"%SRCROOT%": {URI: "file://" + filepath.ToSlash(srcRoot) + "/"},
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

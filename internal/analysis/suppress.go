package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// directivePrefix introduces a nanolint directive comment. Two verbs are
// recognised:
//
//	//nanolint:ignore <rule>[,<rule>...] <reason...>
//	//nanolint:hotpath [note...]
//
// An ignore directive suppresses the named rule(s), placed either at the
// end of the offending line or on its own line directly above it. The
// reason is mandatory: a suppression without a justification is itself
// reported. Rule names must exist; a directive naming an unknown rule is
// malformed (it could never suppress anything). A hotpath directive in a
// function's doc comment opts that function into the hotalloc pass; it is
// consumed by that pass, not here.
const directivePrefix = "//nanolint:"

// hotpathVerb is the non-suppression directive verb handled by hotalloc.
const hotpathVerb = "hotpath"

// directive is one parsed //nanolint:ignore comment.
type directive struct {
	pos    token.Position
	rules  []string
	reason string
	// used is set when any finding is suppressed by this directive; a
	// directive that suppresses nothing is reported as stale.
	used bool
}

// suppressionSet indexes a package's directives by file and line.
type suppressionSet struct {
	// byLine maps filename -> line -> rule -> directive. A directive on
	// line L covers findings on L (trailing comment) and L+1 (comment
	// above).
	byLine     map[string]map[int]map[string]*directive
	directives []*directive
	malformed  []Finding
}

func collectSuppressions(pkg *Package) *suppressionSet {
	s := &suppressionSet{byLine: map[string]map[int]map[string]*directive{}}
	known := knownRules()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s.add(pos, rest, known)
			}
		}
	}
	return s
}

// knownRules returns the valid suppression targets: every shipped rule
// name. The driver pseudo-rules ("nanolint" for malformed directives,
// "unused-suppression" for stale ones) are deliberately absent — their
// findings demand fixing the directive, not suppressing the report.
func knownRules() map[string]bool {
	rules := map[string]bool{}
	for _, az := range All() {
		rules[az.Name] = true
	}
	return rules
}

func (s *suppressionSet) add(pos token.Position, rest string, known map[string]bool) {
	fields := strings.Fields(rest)
	bad := func(msg string) {
		s.malformed = append(s.malformed, Finding{
			Pos:     pos,
			Rule:    "nanolint",
			Message: msg,
		})
	}
	if len(fields) > 0 && fields[0] == hotpathVerb {
		// Valid annotation, consumed by the hotalloc pass.
		return
	}
	if len(fields) == 0 || fields[0] != "ignore" {
		bad("malformed nanolint directive: expected //nanolint:ignore <rule> <reason>")
		return
	}
	if len(fields) < 2 {
		bad("nanolint:ignore directive is missing the rule name")
		return
	}
	if len(fields) < 3 {
		bad("nanolint:ignore directive needs a justification: //nanolint:ignore " + fields[1] + " <reason>")
		return
	}
	rules := strings.Split(fields[1], ",")
	for _, rule := range rules {
		if !known[rule] {
			bad("nanolint:ignore names unknown rule " + strconv.Quote(rule) + "; run nanolint -list for the rule set")
			return
		}
	}
	d := &directive{
		pos:    pos,
		rules:  rules,
		reason: strings.Join(fields[2:], " "),
	}
	s.directives = append(s.directives, d)
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int]map[string]*directive{}
		s.byLine[pos.Filename] = lines
	}
	byRule := lines[pos.Line]
	if byRule == nil {
		byRule = map[string]*directive{}
		lines[pos.Line] = byRule
	}
	for _, rule := range rules {
		byRule[rule] = d
	}
}

// match reports whether a directive covers the finding, returning its
// reason and marking the directive used.
func (s *suppressionSet) match(f Finding) (string, bool) {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if d, ok := lines[line][f.Rule]; ok {
			d.used = true
			return d.reason, true
		}
	}
	return "", false
}

// unused reports every directive that suppressed nothing as an
// unused-suppression finding, so stale ignores cannot be carried forever.
// A directive is only judged when every rule it names was actually run
// (ranSet): under a -rules subset, a directive for an un-run rule might
// still be load-bearing.
func (s *suppressionSet) unused(ranSet map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.directives {
		if d.used {
			continue
		}
		all := true
		for _, rule := range d.rules {
			if !ranSet[rule] {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		out = append(out, Finding{
			Pos:  d.pos,
			Rule: "unused-suppression",
			Message: "nanolint:ignore " + strings.Join(d.rules, ",") +
				" suppresses no findings; delete the stale directive",
		})
	}
	return out
}

package analysis

import (
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. The full form is
//
//	//nanolint:ignore <rule> <reason...>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is mandatory: a suppression without a
// justification is itself reported.
const directivePrefix = "//nanolint:"

// suppressionSet indexes a package's directives by file and line.
type suppressionSet struct {
	// byLine maps filename -> line -> rule -> reason. A directive on line
	// L covers findings on L (trailing comment) and L+1 (comment above).
	byLine    map[string]map[int]map[string]string
	malformed []Finding
}

func collectSuppressions(pkg *Package) *suppressionSet {
	s := &suppressionSet{byLine: map[string]map[int]map[string]string{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				s.add(pos, rest)
			}
		}
	}
	return s
}

func (s *suppressionSet) add(pos token.Position, rest string) {
	fields := strings.Fields(rest)
	bad := func(msg string) {
		s.malformed = append(s.malformed, Finding{
			Pos:     pos,
			Rule:    "nanolint",
			Message: msg,
		})
	}
	if len(fields) == 0 || fields[0] != "ignore" {
		bad("malformed nanolint directive: expected //nanolint:ignore <rule> <reason>")
		return
	}
	if len(fields) < 2 {
		bad("nanolint:ignore directive is missing the rule name")
		return
	}
	if len(fields) < 3 {
		bad("nanolint:ignore directive needs a justification: //nanolint:ignore " + fields[1] + " <reason>")
		return
	}
	rule := fields[1]
	reason := strings.Join(fields[2:], " ")
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int]map[string]string{}
		s.byLine[pos.Filename] = lines
	}
	rules := lines[pos.Line]
	if rules == nil {
		rules = map[string]string{}
		lines[pos.Line] = rules
	}
	rules[rule] = reason
}

// match reports whether a directive covers the finding, returning its
// reason.
func (s *suppressionSet) match(f Finding) (string, bool) {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return "", false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if reason, ok := lines[line][f.Rule]; ok {
			return reason, true
		}
	}
	return "", false
}

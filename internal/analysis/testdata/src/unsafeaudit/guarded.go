// guarded.go is allowlisted in unsafeAllowlist, so the unsafe import is
// accepted — but every unsafe.Slice view must follow the decode.go
// pattern: alignment check on the if, loop fallback in the function.
package unsafeaudit

import "unsafe"

// Guarded is the audited pattern from internal/server/decode.go: check
// alignment, take the zero-copy view, otherwise fall back to a copy loop.
func Guarded(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
	}
	return out
}

// Unguarded takes the view with no alignment check at all.
func Unguarded(b []byte) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4) // want unsafeaudit
}

// NoFallback checks alignment but offers no copy loop for the misaligned
// case, so misaligned input has no correct path.
func NoFallback(b []byte) []uint32 {
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(uint32(0)) == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4) // want unsafeaudit
	}
	return nil
}

// Package unsafeaudit is a nanolint test fixture for the unsafeaudit
// rule. This file is NOT on the allowlist, so its unsafe import is a
// finding regardless of how carefully it is used; guarded.go is
// allowlisted and exercises the unsafe.Slice guard checks. Trailing
// "// want <rule>" markers are the expected unsuppressed findings.
package unsafeaudit

import "unsafe" // want unsafeaudit

// WordSize uses unsafe outside the audited allowlist.
func WordSize() uintptr {
	return unsafe.Sizeof(uint64(0))
}

// Package floateq is a nanolint test fixture for the floateq rule.
// Trailing "// want <rule>" markers are the expected unsuppressed findings.
package floateq

// Equal compares floats directly outside any tolerance helper.
func Equal(a, b float64) bool {
	return a == b // want floateq
}

// ZeroSentinel is the ==0 form; exact sentinels must be suppressed, not
// silently allowed.
func ZeroSentinel(a float64) bool {
	return a != 0 // want floateq
}

// Mixed flags float32 too.
func Mixed(a, b float32) bool {
	return a == b // want floateq
}

// almostEqual is an approved tolerance helper: direct comparison inside it
// is the point.
func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// ConstFolded comparisons evaluate at compile time; no finding.
func ConstFolded() bool {
	const x = 0.1
	const y = 0.2
	return x+x == y
}

// Ints are not floats.
func Ints(a, b int) bool { return a == b }

// Package wallclock is a nanolint test fixture for the wallclock rule.
// This file is named checkpoint.go, so the determinism passes apply even
// though the package is outside core/energy/thermal/expt; other.go shows
// the rule staying quiet elsewhere. Trailing "// want <rule>" markers are
// the expected unsuppressed findings.
package wallclock

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock, which never replays.
func Stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// Jitter draws from the shared time-seeded global source.
func Jitter() float64 {
	return rand.Float64() // want wallclock
}

// Seeded uses a private, explicitly seeded source: the sanctioned form.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Merge races two channels; the runtime picks pseudo-randomly when both
// are ready.
func Merge(a, b <-chan int) int {
	select { // want wallclock
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Drain has one channel case plus default: no race to resolve.
func Drain(a <-chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// other.go is the negative half of the wallclock fixture: same package,
// but the file is not checkpoint.go, so wall-clock reads are allowed
// (CLI progress reporting, benchmarks, and the like live here).
package wallclock

import "time"

// Elapsed measures wall time outside the determinism scope.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Package libpanic is a nanolint test fixture for the libpanic rule; its
// import path sits under internal/, so panics reachable from exported APIs
// are findings. Trailing "// want <rule>" markers are the expected
// unsuppressed findings.
package libpanic

// Exported panics directly.
func Exported(x int) int {
	if x < 0 {
		panic("negative input") // want libpanic
	}
	return x
}

// Public reaches a panic through an unexported helper.
func Public() { helper() }

func helper() {
	panic("reached via Public") // want libpanic
}

// table's initializer runs on import, before any caller could recover.
var table = buildTable()

func buildTable() []int {
	if len(defaults) == 0 {
		panic("empty defaults") // want libpanic
	}
	return defaults
}

var defaults = []int{1, 2, 3}

// orphan is referenced by nothing exported; its panic is unreachable from
// the package API and not reported.
func orphan() {
	panic("unreachable")
}

// MustPositive follows the Must* convention whose documented contract is to
// panic; exempt.
func MustPositive(x int) int {
	if x <= 0 {
		panic("not positive")
	}
	return x
}

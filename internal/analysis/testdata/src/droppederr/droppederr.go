// Package droppederr is a nanolint test fixture for the droppederr rule.
// Trailing "// want <rule>" markers are the expected unsuppressed findings.
package droppederr

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

// Bad discards errors every way the rule knows about.
func Bad() {
	fail()          // want droppederr
	_ = fail()      // want droppederr
	n, _ := value() // want droppederr
	_ = n
}

// Handled shows the accepted forms.
func Handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := value()
	_ = n
	return err
}

// Excluded calls may drop their error results: terminal writes have no
// recovery path and in-memory writers never fail.
func Excluded() {
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "terminal")
	var b strings.Builder
	fmt.Fprintf(&b, "buffered")
	b.WriteString("never fails")
}

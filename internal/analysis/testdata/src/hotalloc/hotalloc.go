// Package hotalloc is a nanolint test fixture for the hotalloc rule:
// allocation sites inside functions annotated //nanolint:hotpath are
// findings; unannotated functions allocate freely. Trailing
// "// want <rule>" markers are the expected unsuppressed findings.
package hotalloc

type sample struct{ t, v float64 }

type ring struct {
	buf  []sample
	next int
}

// Step is a hot kernel: the make and the closure both allocate per call.
//
//nanolint:hotpath
func (r *ring) Step(words []uint32) {
	scratch := make([]float64, len(words)) // want hotalloc
	for i, w := range words {
		scratch[i] = float64(w)
	}
	f := func() float64 { return scratch[0] } // want hotalloc
	r.buf[r.next] = sample{t: f(), v: scratch[0]}
	r.next++
}

// Emit returns a pointer to a fresh composite: one heap object per call.
//
//nanolint:hotpath
func (r *ring) Emit() *sample {
	return &sample{} // want hotalloc
}

// Push hands a composite literal to a callee.
//
//nanolint:hotpath
func (r *ring) Push(v float64) {
	r.record(sample{v: v}) // want hotalloc
}

func (r *ring) record(s sample) {
	r.buf[r.next] = s
}

// Label concatenates strings at runtime.
//
//nanolint:hotpath
func Label(name string) string {
	return name + ":" + name // want hotalloc
}

// constLabel folds at compile time: no runtime concatenation, no finding.
//
//nanolint:hotpath
func constLabel() string {
	return "nano" + "bus"
}

// grow is not annotated, so its allocations are outside the rule.
func grow(n int) []sample {
	return make([]sample, n)
}

// Stamp writes into preallocated state: the clean hot-path shape.
//
//nanolint:hotpath
func (r *ring) Stamp(t, v float64) {
	r.buf[r.next] = sample{t: t, v: v}
	r.next = (r.next + 1) % len(r.buf)
}

// Package maporder is a nanolint test fixture for the maporder rule. This
// file is named checkpoint.go, so the determinism passes apply even though
// the package is outside core/energy/thermal/expt; other.go in the same
// package shows the rule staying quiet elsewhere. Trailing
// "// want <rule>" markers are the expected unsuppressed findings.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// EncodeBad serialises map entries in iteration order.
func EncodeBad(w *strings.Builder, m map[string]float64) {
	for k, v := range m { // want maporder
		fmt.Fprintf(w, "%s=%g;", k, v)
	}
}

// SumBad accumulates floats in iteration order; float addition is not
// associative, so the total differs run to run.
func SumBad(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want maporder
		total += v
	}
	return total
}

// AppendBad collects values (not keys) in iteration order.
func AppendBad(m map[string]int) []int {
	var out []int
	for _, v := range m { // want maporder
		out = append(out, v)
	}
	return out
}

// SortedEncode is the fix: collect the keys, sort, then iterate the slice.
// The key-collection append is recognised and not flagged.
func SortedEncode(w *strings.Builder, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g;", k, m[k])
	}
}

// CountNeg only counts; integer accumulation is order-independent.
func CountNeg(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// InvertNeg builds another map: insertion order does not matter.
func InvertNeg(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

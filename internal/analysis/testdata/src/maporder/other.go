// other.go is the negative half of the maporder fixture: same package,
// but the file is not checkpoint.go and the package is not a
// replay-deterministic one, so order-dependent map iteration is allowed.
package maporder

import "fmt"

// PrintAnywhere feeds output from a map range, but outside the
// determinism scope.
func PrintAnywhere(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

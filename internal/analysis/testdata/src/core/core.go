// Package core is a nanolint test fixture for the ctxpoll rule: the
// directory name makes the import-path tail "core", so the PR 3
// cancellation contract applies to its exported functions. Trailing
// "// want <rule>" markers are the expected unsuppressed findings.
package core

import "context"

// RunWords loops over caller input with no way to cancel.
func RunWords(words []uint32) uint32 {
	var acc uint32
	for _, w := range words { // want ctxpoll
		acc += w
	}
	return acc
}

// RunIgnoresCtx takes a context but neither polls nor forwards it.
func RunIgnoresCtx(ctx context.Context, words []uint32) uint32 {
	var acc uint32
	for _, w := range words { // want ctxpoll
		acc += w
	}
	return acc
}

// RunPolled polls ctx.Err() inside the loop: the contract satisfied
// directly.
func RunPolled(ctx context.Context, words []uint32) (uint32, error) {
	var acc uint32
	for _, w := range words {
		if err := ctx.Err(); err != nil {
			return acc, err
		}
		acc += w
	}
	return acc, nil
}

// RunChunks loops over caller input but forwards ctx to a callee that
// polls, delegating the obligation.
func RunChunks(ctx context.Context, words []uint32) (uint32, error) {
	var acc uint32
	for len(words) > 0 {
		n, err := RunPolled(ctx, words[:1])
		if err != nil {
			return acc, err
		}
		acc += n
		words = words[1:]
	}
	return acc, nil
}

type tape struct{ samples []uint32 }

// Snapshot loops over receiver state, not caller input; serialisation of
// owned buffers is outside the contract.
func (t *tape) Snapshot() uint32 {
	var acc uint32
	for _, s := range t.samples {
		acc += s
	}
	return acc
}

// sum is unexported; the contract binds the exported API only.
func sum(words []uint32) uint32 {
	var acc uint32
	for _, w := range words {
		acc += w
	}
	return acc
}

// Package suppress is a nanolint test fixture for the suppression
// directive: same-line and line-above placement, and the malformed forms
// that are themselves reported. TestSuppressionDirectives asserts against
// this file by line number, so keep edits appends.
package suppress

import "errors"

func fail() error { return errors.New("boom") }

// SameLine carries the directive at the end of the offending line.
func SameLine() {
	fail() //nanolint:ignore droppederr same-line fixture justification
}

// LineAbove carries the directive on its own line directly above.
func LineAbove() {
	//nanolint:ignore droppederr line-above fixture justification
	fail()
}

// MissingReason omits the mandatory justification: the directive is
// malformed and the finding stays unsuppressed.
func MissingReason() {
	fail() //nanolint:ignore droppederr
}

// WrongVerb uses an unknown directive verb.
func WrongVerb() {
	fail() //nanolint:fixme droppederr some reason
}

// WrongRule suppresses a rule that did not fire here; the droppederr
// finding stays unsuppressed and the directive itself is reported as
// unused-suppression.
func WrongRule() {
	fail() //nanolint:ignore floateq misdirected justification
}

// MultiRule suppresses two rules firing on one line with a single
// comma-separated directive.
func MultiRule(a, b float64) bool {
	//nanolint:ignore droppederr,floateq multi-rule fixture justification
	_, eq := fail(), a == b
	return eq
}

// UnknownRule names a rule that does not exist; the directive is
// malformed (it could never suppress anything) and the finding stays.
func UnknownRule() {
	fail() //nanolint:ignore nosuchrule imaginative justification
}

// StaleIgnore has an unsuppressed finding and, below, a well-formed
// directive that matches nothing: the directive is reported as
// unused-suppression.
func StaleIgnore() {
	fail()
}

//nanolint:ignore floateq stale fixture justification
var stale = 1.5

// Package suppress is a nanolint test fixture for the suppression
// directive: same-line and line-above placement, and the malformed forms
// that are themselves reported. TestSuppressionDirectives asserts against
// this file by line number, so keep edits appends.
package suppress

import "errors"

func fail() error { return errors.New("boom") }

// SameLine carries the directive at the end of the offending line.
func SameLine() {
	fail() //nanolint:ignore droppederr same-line fixture justification
}

// LineAbove carries the directive on its own line directly above.
func LineAbove() {
	//nanolint:ignore droppederr line-above fixture justification
	fail()
}

// MissingReason omits the mandatory justification: the directive is
// malformed and the finding stays unsuppressed.
func MissingReason() {
	fail() //nanolint:ignore droppederr
}

// WrongVerb uses an unknown directive verb.
func WrongVerb() {
	fail() //nanolint:fixme droppederr some reason
}

// WrongRule suppresses a rule that did not fire here; the droppederr
// finding stays unsuppressed.
func WrongRule() {
	fail() //nanolint:ignore floateq misdirected justification
}

// Package energy is a nanolint test fixture for the magicconst rule: its
// import-path tail matches a model package, and it re-types physics
// constants that have canonical names in internal/units and internal/itrs.
// Trailing "// want <rule>" markers are the expected unsuppressed findings.
package energy

// Eps0 re-types the permittivity of free space.
const Eps0 = 8.8541878128e-12 // want magicconst

// Table1 re-types an ITRS Table-1 value (130 nm line capacitance, F/m).
const Table1 = 4.406e-11 // want magicconst

// Scaled mixes a re-typed resistivity and ambient temperature into
// otherwise innocent arithmetic.
func Scaled(x float64) float64 {
	rho := 2.2e-8     // want magicconst
	ambient := 318.15 // want magicconst
	return rho*x + ambient
}

// Generic coefficients must not match: too few significant digits, ordinary
// magnitude, or an exact power of ten.
func Generic(x float64) float64 {
	return 0.5*x + 2.0*x + 1e-12*x + 42.0
}

// NearMiss is outside the 1e-9 relative tolerance of units.AmbientK.
const NearMiss = 318.151

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective opts a function into the hotalloc pass when it appears
// in the function's doc comment (optionally followed by a note).
const hotpathDirective = directivePrefix + hotpathVerb

// HotAlloc returns the hotalloc analyzer: allocation sites inside
// functions annotated //nanolint:hotpath. The annotated functions are the
// kernels whose zero-alloc steady state is pinned at runtime by
// testing.AllocsPerRun gates (core.Simulator.StepBatch, the server's
// decodeWords/appendStreamSample, the transition-memo probe); this pass is
// the compile-time complement, catching an allocation the moment it is
// written instead of when a benchmark regresses.
//
// Flagged inside an annotated function:
//
//   - make(...) and new(...)
//   - function literals (closures allocate their environment)
//   - &T{...} and composite literals passed to calls or returned
//     (escaping composites)
//   - string concatenation with +
//
// Amortized cold-path allocations (e.g. a memo miss installing an entry)
// are suppressed with a written justification.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "flags heap allocations (make/new, closures, escaping composites, " +
			"string concatenation) in functions annotated //nanolint:hotpath",
		Run: runHotAlloc,
	}
}

// isHotpath reports whether the declaration's doc comment carries the
// //nanolint:hotpath annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, info, fd)
		}
	}
	return nil
}

func checkHotBody(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
					pass.Reportf(node.Pos(),
						"%s allocates in hotpath function %s; preallocate outside the hot loop or justify with //nanolint:ignore hotalloc",
						b.Name(), name)
				}
			}
			// A composite literal handed to a call escapes to the callee.
			for _, arg := range node.Args {
				if _, ok := ast.Unparen(arg).(*ast.CompositeLit); ok {
					pass.Reportf(arg.Pos(),
						"composite literal escapes as a call argument in hotpath function %s", name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(node.Pos(),
				"closure literal in hotpath function %s allocates its environment", name)
			return false // inner allocations belong to the closure finding
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					pass.Reportf(node.Pos(),
						"&composite literal allocates in hotpath function %s", name)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if _, ok := ast.Unparen(res).(*ast.CompositeLit); ok {
					pass.Reportf(res.Pos(),
						"composite literal escapes via return in hotpath function %s", name)
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				if tv, ok := info.Types[node.X]; ok && isString(tv.Type) {
					// Constant folding is free; only flag runtime concatenation.
					if full, ok := info.Types[node]; !ok || full.Value == nil {
						pass.Reportf(node.Pos(),
							"string concatenation allocates in hotpath function %s; append into a reused buffer", name)
					}
				}
			}
		}
		return true
	})
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// at builds a position on a given file/line for directive-placement tests.
func at(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

// addDirective parses one directive body (the text after "//nanolint:")
// into a fresh set and reports the resulting counts.
func addDirective(rest string, pos token.Position) *suppressionSet {
	s := &suppressionSet{byLine: map[string]map[int]map[string]*directive{}}
	s.add(pos, rest, knownRules())
	return s
}

func TestSuppressAddForms(t *testing.T) {
	cases := []struct {
		name           string
		rest           string
		directives     int
		malformed      int
		wantMalformMsg string
	}{
		{"well-formed", "ignore droppederr deliberate fixture reason", 1, 0, ""},
		{"multi-rule", "ignore droppederr,floateq covers both on this line", 1, 0, ""},
		{"hotpath annotation", "hotpath consumed by the hotalloc pass", 0, 0, ""},
		{"missing reason", "ignore droppederr", 0, 1, "justification"},
		{"missing rule", "ignore", 0, 1, "rule name"},
		{"wrong verb", "fixme droppederr some reason", 0, 1, "expected //nanolint:ignore"},
		{"unknown rule", "ignore nosuchrule grand plans", 0, 1, `unknown rule "nosuchrule"`},
		{"unknown rule in list", "ignore droppederr,nosuchrule mixed list", 0, 1, `unknown rule "nosuchrule"`},
		{"empty", "", 0, 1, "expected //nanolint:ignore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := addDirective(tc.rest, at("a.go", 10))
			if len(s.directives) != tc.directives {
				t.Errorf("directives = %d, want %d", len(s.directives), tc.directives)
			}
			if len(s.malformed) != tc.malformed {
				t.Fatalf("malformed = %d, want %d", len(s.malformed), tc.malformed)
			}
			if tc.malformed == 1 {
				f := s.malformed[0]
				if f.Rule != "nanolint" {
					t.Errorf("malformed rule = %q, want nanolint", f.Rule)
				}
				if !strings.Contains(f.Message, tc.wantMalformMsg) {
					t.Errorf("malformed message %q does not mention %q", f.Message, tc.wantMalformMsg)
				}
			}
		})
	}
}

func TestSuppressMatchPlacement(t *testing.T) {
	finding := func(file string, line int, rule string) Finding {
		return Finding{Pos: at(file, line), Rule: rule, Message: "x"}
	}
	cases := []struct {
		name    string
		finding Finding
		want    bool
	}{
		{"same line", finding("a.go", 10, "droppederr"), true},
		{"line below (directive above)", finding("a.go", 11, "droppederr"), true},
		{"two lines below", finding("a.go", 12, "droppederr"), false},
		{"line above the directive", finding("a.go", 9, "droppederr"), false},
		{"other file", finding("b.go", 10, "droppederr"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := addDirective("ignore droppederr placement fixture reason", at("a.go", 10))
			reason, ok := s.match(tc.finding)
			if ok != tc.want {
				t.Fatalf("match = %v, want %v", ok, tc.want)
			}
			if ok && reason != "placement fixture reason" {
				t.Errorf("reason = %q", reason)
			}
			if s.directives[0].used != tc.want {
				t.Errorf("directive.used = %v, want %v", s.directives[0].used, tc.want)
			}
		})
	}

	t.Run("wrong rule", func(t *testing.T) {
		s := addDirective("ignore floateq misdirected reason", at("a.go", 10))
		if _, ok := s.match(finding("a.go", 10, "droppederr")); ok {
			t.Error("directive for floateq matched a droppederr finding")
		}
	})

	t.Run("multi-rule covers each named rule", func(t *testing.T) {
		s := addDirective("ignore droppederr,floateq shared justification", at("a.go", 10))
		for _, rule := range []string{"droppederr", "floateq"} {
			if _, ok := s.match(finding("a.go", 10, rule)); !ok {
				t.Errorf("multi-rule directive did not match %s", rule)
			}
		}
		if _, ok := s.match(finding("a.go", 10, "maporder")); ok {
			t.Error("multi-rule directive matched a rule it does not name")
		}
	})
}

func TestSuppressUnused(t *testing.T) {
	allRan := map[string]bool{}
	for _, az := range All() {
		allRan[az.Name] = true
	}

	t.Run("unmatched directive is reported", func(t *testing.T) {
		s := addDirective("ignore droppederr stale reason", at("a.go", 10))
		out := s.unused(allRan)
		if len(out) != 1 || out[0].Rule != "unused-suppression" {
			t.Fatalf("unused = %v", out)
		}
		if out[0].Pos != at("a.go", 10) {
			t.Errorf("unused finding at %v, want directive position", out[0].Pos)
		}
	})

	t.Run("matched directive is not reported", func(t *testing.T) {
		s := addDirective("ignore droppederr live reason", at("a.go", 10))
		if _, ok := s.match(Finding{Pos: at("a.go", 10), Rule: "droppederr"}); !ok {
			t.Fatal("setup: match failed")
		}
		if out := s.unused(allRan); len(out) != 0 {
			t.Errorf("unused = %v, want none", out)
		}
	})

	t.Run("not judged when a named rule did not run", func(t *testing.T) {
		s := addDirective("ignore droppederr,floateq subset reason", at("a.go", 10))
		ranSet := map[string]bool{"droppederr": true} // floateq skipped via -rules
		if out := s.unused(ranSet); len(out) != 0 {
			t.Errorf("unused under a rule subset = %v, want none", out)
		}
		if out := s.unused(allRan); len(out) != 1 {
			t.Errorf("unused under the full set = %v, want one", out)
		}
	})
}

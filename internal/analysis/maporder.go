package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// deterministicPkgs are the replay-deterministic packages (by final
// import-path element): their outputs are pinned bit-for-bit by the
// checkpoint/resume and sweep-cache tests, so any map-iteration-order
// dependence is a latent nondeterminism bug. Files named checkpoint.go
// are held to the same standard in every package (the NBCP/NBSE encode
// paths live there).
var deterministicPkgs = map[string]bool{
	"core":    true,
	"energy":  true,
	"thermal": true,
	"expt":    true,
}

// deterministicFile reports whether the file at pos is subject to the
// determinism passes (maporder, wallclock).
func deterministicFile(pass *Pass, filename string) bool {
	return deterministicPkgs[pass.Pkg.PathTail()] ||
		filepath.Base(filename) == "checkpoint.go"
}

// MapOrder returns the maporder analyzer: range statements over maps in
// the replay-deterministic packages whose body feeds an order-sensitive
// sink — output, serialization, or float accumulation. Go randomizes map
// iteration order per run, so such a loop breaks bit-identical replay.
// The fix is to collect the keys, sort them, and range over the sorted
// slice; the pass recognises that pattern (a loop whose only effect is
// appending the key) and does not flag it.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc: "flags range-over-map feeding output, serialization, or float " +
			"accumulation in replay-deterministic packages (core, energy, " +
			"thermal, expt, checkpoint.go files); sort the keys first",
		Run: runMapOrder,
	}
}

func runMapOrder(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(file.Pos()).Filename
		if !deterministicFile(pass, filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			keyObj := rangeVarObj(info, rng.Key)
			if sink := findOrderSink(info, rng.Body, keyObj); sink != "" {
				pass.Reportf(rng.Pos(),
					"range over map feeds %s in iteration order; iterate sorted keys instead (replay-determinism contract)",
					sink)
			}
			return true
		})
	}
	return nil
}

// rangeVarObj resolves the object of a range key/value variable.
func rangeVarObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// findOrderSink scans a range body for an order-sensitive sink and
// describes the first one found. Order-insensitive bodies — building a
// set or another map, counting, deleting, and the canonical
// key-collection append `keys = append(keys, k)` — return "".
func findOrderSink(info *types.Info, body *ast.BlockStmt, keyObj types.Object) string {
	sink := ""
	found := func(s string) { sink = s }
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(node.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
					if !isKeyCollection(info, node, keyObj) {
						found("an append")
					}
				}
			case *ast.SelectorExpr:
				if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
					if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
						found("formatted output (" + f.FullName() + ")")
						break
					}
				}
				switch fun.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "WriteTo":
					found("a writer (" + fun.Sel.Name + ")")
				}
			}
		case *ast.AssignStmt:
			switch node.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range node.Lhs {
					if tv, ok := info.Types[lhs]; ok && isFloat(tv.Type) {
						found("float accumulation")
					}
				}
			}
		case *ast.SendStmt:
			found("a channel send")
		}
		return sink == ""
	})
	return sink
}

// isKeyCollection recognises `keys = append(keys, k)` where k is the
// range key: the standard first half of the sort-the-keys fix.
func isKeyCollection(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && info.Uses[id] == keyObj
}

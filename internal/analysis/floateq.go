package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// floatEqApproved matches names of tolerance helpers inside which direct
// float comparison is the point (they implement the approximation).
var floatEqApproved = regexp.MustCompile(`(?i)approx|almost|near|within|toler|close`)

// FloatEq returns the floateq analyzer: direct ==/!= between
// floating-point expressions outside approved tolerance helpers. Exact
// comparison is only sound for sentinel checks (unchanged value, exact
// zero guard), which must be suppressed with a justification.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc: "flags direct ==/!= between floating-point expressions outside " +
			"approved tolerance helpers",
		Run: runFloatEq,
	}
}

func runFloatEq(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcs := fileFuncRanges(file)
		ast.Inspect(file, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			tx, ty := info.Types[cmp.X], info.Types[cmp.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant-folded: evaluated at compile time
			}
			if name := enclosingFunc(funcs, cmp.Pos()); floatEqApproved.MatchString(name) {
				return true
			}
			pass.Reportf(cmp.Pos(),
				"direct floating-point %s comparison; use a tolerance helper, or suppress with a justification if an exact sentinel is intended",
				cmp.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funcRange locates one function declaration's extent, for attributing
// expressions to their enclosing function by position.
type funcRange struct {
	name     string
	pos, end token.Pos
}

func fileFuncRanges(file *ast.File) []funcRange {
	var out []funcRange
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, funcRange{fd.Name.Name, fd.Pos(), fd.End()})
		}
	}
	return out
}

func enclosingFunc(funcs []funcRange, pos token.Pos) string {
	for _, f := range funcs {
		if f.pos <= pos && pos < f.end {
			return f.name
		}
	}
	return ""
}

package analysis

import (
	"go/ast"
	"go/types"
)

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// droppedErrExcluded lists callees (by types.Func.FullName) whose error
// results may be discarded: terminal writes to stdout, and the in-memory
// writers documented to never fail.
var droppedErrExcluded = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,

	"(*strings.Builder).Write":       true,
	"(*strings.Builder).WriteString": true,
	"(*strings.Builder).WriteByte":   true,
	"(*strings.Builder).WriteRune":   true,
	"(*bytes.Buffer).Write":          true,
	"(*bytes.Buffer).WriteString":    true,
	"(*bytes.Buffer).WriteByte":      true,
	"(*bytes.Buffer).WriteRune":      true,
}

// droppedErrExcludedWriters are fmt.Fprint* first-argument types whose
// writes cannot fail (in-memory buffers), or that buffer until Flush — for
// the tabwriter, errors surface at Flush, which stays checked.
var droppedErrExcludedWriters = map[string]bool{
	"*strings.Builder":       true,
	"*bytes.Buffer":          true,
	"*text/tabwriter.Writer": true,
}

// isStdStream reports whether the expression is exactly the os.Stdout or
// os.Stderr variable. Like fmt.Print*, a failed terminal write has no
// recovery path, so fmt.Fprint*(os.Stderr, ...) may discard its error.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}

// DroppedErr returns the droppederr analyzer: error-returning calls whose
// result is discarded via `_` or a bare call statement.
func DroppedErr() *Analyzer {
	return &Analyzer{
		Name: "droppederr",
		Doc: "flags calls whose error result is discarded via _ or a bare " +
			"call statement in non-test code",
		Run: runDroppedErr,
	}
}

func runDroppedErr(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok || !callReturnsError(info, call) || excludedCallee(info, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"result of %s contains an error that is silently discarded; handle it or assign it",
					calleeName(info, call))
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkBlankErrAssign flags `_ = f()` / `x, _ := g()` where the blanked
// value is an error produced by a call.
func checkBlankErrAssign(pass *Pass, stmt *ast.AssignStmt) {
	info := pass.Pkg.Info
	// Multi-value form: x, _ := g().
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok || excludedCallee(info, call) {
			return
		}
		tuple, ok := info.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range stmt.Lhs {
			if isBlank(lhs) && i < tuple.Len() && types.Identical(tuple.At(i).Type(), errorType) {
				pass.Reportf(lhs.Pos(),
					"error result of %s is discarded with _; handle it",
					calleeName(info, call))
			}
		}
		return
	}
	// Parallel form: _ = f(), a, _ = f(), g().
	if len(stmt.Rhs) != len(stmt.Lhs) {
		return
	}
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) {
			continue
		}
		call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr)
		if !ok || excludedCallee(info, call) {
			continue
		}
		if tv, ok := info.Types[call]; ok && tv.Type != nil && types.Identical(tv.Type, errorType) {
			pass.Reportf(lhs.Pos(),
				"error result of %s is discarded with _; handle it",
				calleeName(info, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callReturnsError reports whether any result of the call is exactly the
// error type.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// calleeFunc resolves the called function, if it is a statically known
// function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return "call"
}

func excludedCallee(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil {
		return false
	}
	name := f.FullName()
	if droppedErrExcluded[name] {
		return true
	}
	switch name {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) > 0 {
			if isStdStream(info, call.Args[0]) {
				return true
			}
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Type != nil &&
				droppedErrExcludedWriters[tv.Type.String()] {
				return true
			}
		}
	}
	return false
}

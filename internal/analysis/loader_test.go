package analysis

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one loader (and hence one type-checked view of the
// module and the standard library) across all tests in this package.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root)
})

func testLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func TestLoaderLoadsModulePackage(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir("internal/units")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.ImportPath != "nanobus/internal/units" {
		t.Errorf("import path = %q", pkg.ImportPath)
	}
	if pkg.Types.Scope().Lookup("Eps0") == nil {
		t.Errorf("units.Eps0 not found in type-checked package")
	}
	if pkg.PathTail() != "units" {
		t.Errorf("PathTail = %q", pkg.PathTail())
	}
}

func TestLoaderResolvesInternalImports(t *testing.T) {
	l := testLoader(t)
	// itrs imports nanobus/internal/units and the stdlib (fmt, math, sort).
	pkg, err := l.LoadDir("internal/itrs")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Types.Scope().Lookup("N130") == nil {
		t.Errorf("itrs.N130 not found")
	}
}

func TestExpandPatterns(t *testing.T) {
	l := testLoader(t)
	dirs, err := l.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("ExpandPatterns: %v", err)
	}
	want := map[string]bool{
		l.ModuleDir(): true, // root package
		filepath.Join(l.ModuleDir(), "internal", "energy"): true,
		filepath.Join(l.ModuleDir(), "cmd", "nanobus"):     true,
	}
	got := map[string]bool{}
	for _, d := range dirs {
		got[d] = true
		if filepath.Base(filepath.Dir(d)) == "testdata" || filepath.Base(d) == "testdata" {
			t.Errorf("ExpandPatterns(./...) included testdata dir %s", d)
		}
	}
	for d := range want {
		if !got[d] {
			t.Errorf("ExpandPatterns(./...) missing %s", d)
		}
	}
	// Explicit non-recursive patterns may name testdata packages.
	dirs, err = l.ExpandPatterns([]string{"internal/units"})
	if err != nil || len(dirs) != 1 {
		t.Fatalf("ExpandPatterns(internal/units) = %v, %v", dirs, err)
	}
}

// TestLoadDirNoGoFiles checks the typed error for directories with zero
// non-test Go files: errors.Is-identifiable, and the message says what to
// do about it.
func TestLoadDirNoGoFiles(t *testing.T) {
	l := testLoader(t)
	// testdata itself holds only the src/ fixture tree, no Go files.
	_, err := l.LoadDir("internal/analysis/testdata")
	if err == nil {
		t.Fatal("LoadDir on a no-Go-files directory returned nil error")
	}
	if !errors.Is(err, ErrNoGoFiles) {
		t.Errorf("error does not unwrap to ErrNoGoFiles: %v", err)
	}
	var ngf *NoGoFilesError
	if !errors.As(err, &ngf) {
		t.Fatalf("error is not *NoGoFilesError: %v", err)
	}
	if ngf.ImportPath != "nanobus/internal/analysis/testdata" {
		t.Errorf("ImportPath = %q", ngf.ImportPath)
	}
	if ngf.Dir != filepath.Join(l.ModuleDir(), "internal", "analysis", "testdata") {
		t.Errorf("Dir = %q", ngf.Dir)
	}
	if !strings.Contains(err.Error(), "non-test .go file") {
		t.Errorf("message is not actionable: %q", err)
	}
}

func TestLoaderHonorsBuildConstraints(t *testing.T) {
	l := testLoader(t)
	// faultinject ships two mutually-exclusive build-tag variants; loading
	// both at once would report phantom redeclarations. Only the default
	// (armed) variant may be included.
	pkg, err := l.LoadDir("internal/faultinject")
	if err != nil {
		t.Fatalf("LoadDir(internal/faultinject): %v", err)
	}
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if name == "faultinject_off.go" {
			t.Fatalf("loader included the nanobus_nofault variant %s", name)
		}
	}
	if pkg.Types.Scope().Lookup("Hit") == nil {
		t.Fatal("armed variant missing: no Hit in package scope")
	}
}

package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// unsafeAllowlist names the files (by module-relative path suffix) that
// may import unsafe. Each entry exists for one audited purpose; growing
// this list is a review event, not an edit:
//
//   - internal/server/decode.go: the zero-copy little-endian word view on
//     the binary ingest path (PR 4), guarded by the alignment check with
//     loop fallback this pass also enforces.
//   - internal/nbwp/words.go: the same reinterpretation for NBWP STEP
//     frame payloads (PR 7), same alignment-check-plus-fallback idiom.
//   - internal/analysis/testdata/src/unsafeaudit/guarded.go: the golden
//     fixture exercising the guard detector itself.
var unsafeAllowlist = []string{
	"internal/server/decode.go",
	"internal/nbwp/words.go",
	"internal/analysis/testdata/src/unsafeaudit/guarded.go",
}

// UnsafeAudit returns the unsafeaudit analyzer. Two obligations:
//
//  1. unsafe may only be imported by allowlisted files, so every
//     reinterpretation in the repo is enumerable and reviewed.
//  2. Every unsafe.Slice view must follow the PR 4 pattern: constructed
//     only under an if whose condition checks pointer alignment
//     (... % unsafe.Alignof(...) == 0), inside a function that also
//     carries an explicit loop fallback for the misaligned case.
func UnsafeAudit() *Analyzer {
	return &Analyzer{
		Name: "unsafeaudit",
		Doc: "confines unsafe to allowlisted files and requires unsafe.Slice " +
			"views to sit behind an alignment check with a loop fallback",
		Run: runUnsafeAudit,
	}
}

func runUnsafeAudit(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		var unsafeImport *ast.ImportSpec
		for _, imp := range file.Imports {
			if imp.Path.Value == `"unsafe"` {
				unsafeImport = imp
				break
			}
		}
		if unsafeImport == nil {
			continue
		}
		filename := filepath.ToSlash(pass.Pkg.Fset.Position(file.Pos()).Filename)
		if !allowlistedUnsafe(filename) {
			pass.Reportf(unsafeImport.Pos(),
				"unsafe imported outside the audited allowlist; move the reinterpretation "+
					"into an allowlisted file or extend unsafeAllowlist under review")
			continue
		}
		checkUnsafeSliceGuards(pass, file)
	}
	return nil
}

func allowlistedUnsafe(filename string) bool {
	for _, suffix := range unsafeAllowlist {
		if strings.HasSuffix(filename, suffix) {
			return true
		}
	}
	return false
}

// checkUnsafeSliceGuards walks the file with an ancestor stack and
// verifies each unsafe.Slice call is (a) under an if condition that
// computes an alignment remainder with unsafe.Alignof and (b) inside a
// function containing a for-loop fallback.
func checkUnsafeSliceGuards(pass *Pass, file *ast.File) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isUnsafeSel(call.Fun, "Slice") {
			return true
		}
		guarded, fallback := false, false
		for _, anc := range stack {
			switch a := anc.(type) {
			case *ast.IfStmt:
				if condChecksAlignment(a.Cond) {
					guarded = true
				}
			case *ast.FuncDecl:
				if a.Body != nil && containsForLoop(a.Body) {
					fallback = true
				}
			}
		}
		switch {
		case !guarded:
			pass.Reportf(call.Pos(),
				"unsafe.Slice view is not guarded by an alignment check "+
					"(... %% unsafe.Alignof(...) == 0); see internal/server/decode.go for the pattern")
		case !fallback:
			pass.Reportf(call.Pos(),
				"unsafe.Slice view has no loop fallback for the misaligned case in the enclosing function")
		}
		return true
	})
}

// isUnsafeSel matches the selector unsafe.<name>.
func isUnsafeSel(fun ast.Expr, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && id.Name == "unsafe"
}

// condChecksAlignment reports whether the condition contains a remainder
// expression involving unsafe.Alignof — the shape of the alignment guard.
func condChecksAlignment(cond ast.Expr) bool {
	hasRem, hasAlignof := false, false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Op.String() == "%" {
				hasRem = true
			}
		case *ast.CallExpr:
			if isUnsafeSel(node.Fun, "Alignof") {
				hasAlignof = true
			}
		}
		return true
	})
	return hasRem && hasAlignof
}

func containsForLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

package analysis

import (
	"go/types"
	"testing"
)

// cgFixture loads the libpanic fixture's call graph, whose shape the
// fixture documents: Exported and Public are exported entries, helper is
// reached through Public, buildTable runs from a package variable
// initializer, orphan is unreachable, MustPositive is exported.
func cgFixture(t *testing.T) *CallGraph {
	t.Helper()
	return loadFixture(t, "libpanic").CallGraph()
}

func cgLookup(g *CallGraph, name string) *types.Func {
	for _, fn := range g.FuncsInOrder() {
		if fn.Name() == name {
			return fn
		}
	}
	return nil
}

func TestCallGraphDeclOrder(t *testing.T) {
	g := cgFixture(t)
	want := []string{"Exported", "Public", "helper", "buildTable", "orphan", "MustPositive"}
	got := g.FuncsInOrder()
	if len(got) != len(want) {
		t.Fatalf("FuncsInOrder len = %d, want %d", len(got), len(want))
	}
	for i, fn := range got {
		if fn.Name() != want[i] {
			t.Errorf("FuncsInOrder[%d] = %s, want %s", i, fn.Name(), want[i])
		}
	}
}

func TestCallGraphEntries(t *testing.T) {
	g := cgFixture(t)
	labels := map[string]string{}
	for _, e := range g.Entries {
		if _, dup := labels[e.Fn.Name()]; !dup {
			labels[e.Fn.Name()] = e.Label
		}
	}
	for name, want := range map[string]string{
		"Exported":     "exported Exported",
		"Public":       "exported Public",
		"MustPositive": "exported MustPositive",
		"buildTable":   "package variable initialisation",
	} {
		if labels[name] != want {
			t.Errorf("entry label for %s = %q, want %q", name, labels[name], want)
		}
	}
	if _, ok := labels["orphan"]; ok {
		t.Error("orphan listed as an entry")
	}
	if _, ok := labels["helper"]; ok {
		t.Error("unexported helper listed as an entry")
	}
}

func TestCallGraphReachable(t *testing.T) {
	g := cgFixture(t)
	reached := g.Reachable()
	helper := cgLookup(g, "helper")
	if helper == nil {
		t.Fatal("helper not in call graph")
	}
	if via, ok := reached[helper]; !ok || via != "exported Public" {
		t.Errorf("helper reached via %q, %v; want \"exported Public\", true", via, ok)
	}
	orphan := cgLookup(g, "orphan")
	if _, ok := reached[orphan]; ok {
		t.Error("orphan reported reachable")
	}
	// The result is cached: a second call returns identical contents.
	again := g.Reachable()
	if len(again) != len(reached) {
		t.Errorf("second Reachable() differs: %d vs %d entries", len(again), len(reached))
	}
}

// TestCallGraphCached checks the per-package sync.Once cache: repeated
// CallGraph() calls hand back the identical graph.
func TestCallGraphCached(t *testing.T) {
	pkg := loadFixture(t, "libpanic")
	if pkg.CallGraph() != pkg.CallGraph() {
		t.Error("CallGraph() built two graphs for one package")
	}
}

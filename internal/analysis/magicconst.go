package analysis

import (
	"go/ast"
	"go/token"
	"math"
	"strconv"
	"strings"

	"nanobus/internal/itrs"
	"nanobus/internal/units"
)

// magicTol is the relative tolerance within which a literal counts as a
// re-typed copy of a named constant.
const magicTol = 1e-9

// magicTargets are the model packages (by final import-path element) whose
// arithmetic must reference the named constants in internal/units and
// internal/itrs instead of re-typed literals.
var magicTargets = map[string]bool{
	"energy":   true,
	"thermal":  true,
	"capmodel": true,
	"delay":    true,
	"repeater": true,
	"fdm":      true,
}

// namedConst is one entry of the known-constant table.
type namedConst struct {
	// ref is how call sites should spell the constant.
	ref string
	val float64
}

// magicTable lists the named constants a literal may illegally duplicate.
// Curated units entries are always included; ITRS Table-1 values are
// filtered to "distinctive" magnitudes so that common coefficients (0.5,
// 1.0, a bare 2) never match.
func magicTable() []namedConst {
	consts := []namedConst{
		{"units.Eps0", units.Eps0},
		{"units.RhoCopper", units.RhoCopper},
		{"units.CvCopper", units.CvCopper},
		{"units.KCopper", units.KCopper},
		{"units.AmbientK", units.AmbientK},
		{"units.ZeroCelsiusK", units.ZeroCelsiusK},
		{"units.CrepPerCint", units.CrepPerCint},
		{"units.ElmoreDistributed", units.ElmoreDistributed},
		{"units.ElmoreLumped", units.ElmoreLumped},
	}
	for _, n := range itrs.Nodes() {
		name := "itrs.N" + strconv.Itoa(n.FeatureNm)
		for _, field := range []struct {
			name string
			val  float64
		}{
			{"WireWidth", n.WireWidth},
			{"WireThickness", n.WireThickness},
			{"ILDHeight", n.ILDHeight},
			{"ClockHz", n.ClockHz},
			{"JMax", n.JMax},
			{"CLine", n.CLine},
			{"CInter", n.CInter},
			{"RWire", n.RWire},
		} {
			if distinctive(field.val) {
				consts = append(consts, namedConst{name + "." + field.name, field.val})
			}
		}
	}
	return consts
}

// distinctive reports whether a value is unusual enough that an exact match
// is overwhelmingly likely to be a re-typed copy rather than coincidence:
// at least three significant decimal digits, or a magnitude outside
// [1e-2, 1e2] that is not an exact power of ten.
func distinctive(v float64) bool {
	a := math.Abs(v)
	if a == 0 { //nanolint:ignore floateq exact-zero guard before Log10; a zero literal has no magnitude
		return false
	}
	digits := strings.TrimLeft(strconv.FormatFloat(a, 'e', -1, 64), "0.")
	if i := strings.IndexByte(digits, 'e'); i >= 0 {
		digits = digits[:i]
	}
	digits = strings.ReplaceAll(digits, ".", "")
	digits = strings.TrimRight(digits, "0")
	if len(digits) >= 3 {
		return true
	}
	if a >= 1e-2 && a <= 1e2 {
		return false
	}
	exp := math.Log10(a)
	// Powers of ten are generic scale factors, not paper values.
	//nanolint:ignore floateq integer-valued Log10 exactly identifies powers of ten
	return exp != math.Trunc(exp)
}

// MagicConst returns the magicconst analyzer: float literals in the model
// packages that duplicate (within 1e-9 relative tolerance) a named constant
// exported from internal/units or internal/itrs.
func MagicConst() *Analyzer {
	return &Analyzer{
		Name: "magicconst",
		Doc: "flags float literals in internal/{energy,thermal,capmodel,delay,repeater,fdm} " +
			"that re-type a named constant from internal/units or internal/itrs",
		Run: runMagicConst,
	}
}

func runMagicConst(pass *Pass) error {
	if !magicTargets[pass.Pkg.PathTail()] {
		return nil
	}
	table := magicTable()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.FLOAT {
				return true
			}
			v, err := strconv.ParseFloat(strings.ReplaceAll(lit.Value, "_", ""), 64)
			if err != nil {
				return true
			}
			for _, c := range table {
				if math.Abs(v-c.val) <= magicTol*math.Abs(c.val) {
					pass.Reportf(lit.Pos(),
						"float literal %s duplicates %s = %g; use the named constant",
						lit.Value, c.ref, c.val)
					break
				}
			}
			return true
		})
	}
	return nil
}

package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline records the accepted debt at a point in time: how many
// unsuppressed findings of each rule each file is allowed to carry. The
// gate is a ratchet — a run may have fewer findings than the baseline
// (and should then tighten it with -write-baseline), but never more, and
// -ratchet additionally fails when the baseline has gone slack so the
// recorded debt can only shrink.
//
// Keys are "<module-relative path>:<rule>" rather than positions, so
// unrelated edits that shift line numbers do not churn the baseline.
type Baseline struct {
	Version  int            `json:"version"`
	Findings map[string]int `json:"findings"`
}

// baselineVersion guards the file format.
const baselineVersion = 1

// NewBaseline builds a baseline covering the given findings (suppressed
// ones excluded — they are already justified in source).
func NewBaseline(findings []Finding, srcRoot string) *Baseline {
	b := &Baseline{Version: baselineVersion, Findings: map[string]int{}}
	for _, f := range Unsuppressed(findings) {
		b.Findings[baselineKey(f, srcRoot)]++
	}
	return b
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline, so a fresh checkout with no recorded debt needs no file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion, Findings: map[string]int{}}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: version %d, want %d (regenerate with -write-baseline)",
			path, b.Version, baselineVersion)
	}
	if b.Findings == nil {
		b.Findings = map[string]int{}
	}
	return &b, nil
}

// Save writes the baseline with sorted keys so regeneration is
// reproducible and diffs are readable.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply filters out findings covered by the baseline: for each
// "<path>:<rule>" key, up to the recorded count of unsuppressed findings
// pass through as tolerated debt (in sorted order, so the tolerated
// subset is deterministic). Returns the findings still considered fresh.
// Suppressed findings are never baseline-tolerated; they are already
// accounted for in source.
func (b *Baseline) Apply(findings []Finding, srcRoot string) []Finding {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings {
		remaining[k] = v
	}
	var fresh []Finding
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		key := baselineKey(f, srcRoot)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// Slack compares the baseline against the current findings and returns a
// sorted description of every entry with more recorded debt than the run
// produced. A non-empty result under -ratchet fails the gate: the
// baseline must be regenerated downward whenever a finding is fixed, so
// fixed debt cannot silently come back.
func (b *Baseline) Slack(findings []Finding, srcRoot string) []string {
	counts := map[string]int{}
	for _, f := range Unsuppressed(findings) {
		counts[baselineKey(f, srcRoot)]++
	}
	var slack []string
	for key, allowed := range b.Findings {
		if got := counts[key]; got < allowed {
			slack = append(slack, fmt.Sprintf("%s: baseline allows %d, found %d", key, allowed, got))
		}
	}
	sort.Strings(slack)
	return slack
}

// baselineKey is the module-relative path and rule of a finding.
func baselineKey(f Finding, srcRoot string) string {
	path := f.Pos.Filename
	if srcRoot != "" {
		if rel, err := filepath.Rel(srcRoot, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path) + ":" + f.Rule
}

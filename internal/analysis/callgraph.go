package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is a conservative intra-package call graph, built once per
// package and shared by every pass that needs reachability (libpanic,
// ctxpoll). "Conservative" means any use of a package function inside
// another function's body — a direct call or a function value — is an
// edge, so reachability over-approximates: a function counted reachable
// may in truth never be called, but an unreachable one definitely is not.
//
// Everything is ordered by source position, never by map iteration, so
// entry labels and traversal results are deterministic run to run.
type CallGraph struct {
	// Funcs maps each declared function or method with a body to its
	// declaration.
	Funcs map[*types.Func]*ast.FuncDecl
	// Edges lists, in source order, the package-local functions each
	// function references in its body.
	Edges map[*types.Func][]*types.Func
	// Entries are the externally triggerable roots, in source order:
	// exported functions and methods, init functions, and functions
	// referenced from package-level variable initializers (those run on
	// import, before any caller could recover a panic).
	Entries []CallGraphEntry

	// declOrder lists Funcs keys in source order for deterministic
	// iteration.
	declOrder []*types.Func

	reachable map[*types.Func]string
}

// CallGraphEntry is one reachability root with a human-readable label
// describing why it is externally triggerable.
type CallGraphEntry struct {
	Fn    *types.Func
	Label string
}

// CallGraph returns the package's call graph, building it on first use
// and caching it for every subsequent pass.
func (p *Package) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

// FuncsInOrder returns the declared functions in source order.
func (g *CallGraph) FuncsInOrder() []*types.Func { return g.declOrder }

// Reachable maps every function reachable from an entry to the label of
// the first entry (in Entries order) that reaches it. Functions absent
// from the map are unreachable from any root. The result is computed once
// and cached.
func (g *CallGraph) Reachable() map[*types.Func]string {
	if g.reachable != nil {
		return g.reachable
	}
	reached := make(map[*types.Func]string, len(g.Funcs))
	var queue []*types.Func
	for _, e := range g.Entries {
		if _, ok := reached[e.Fn]; !ok {
			reached[e.Fn] = e.Label
			queue = append(queue, e.Fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range g.Edges[fn] {
			if _, ok := reached[callee]; !ok {
				reached[callee] = reached[fn]
				queue = append(queue, callee)
			}
		}
	}
	g.reachable = reached
	return reached
}

func buildCallGraph(pkg *Package) *CallGraph {
	info := pkg.Info
	g := &CallGraph{
		Funcs: map[*types.Func]*ast.FuncDecl{},
		Edges: map[*types.Func][]*types.Func{},
	}

	// Declarations, in file/decl order.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				g.Funcs[fn] = fd
				g.declOrder = append(g.declOrder, fn)
			}
		}
	}

	// Edges: every reference to a package-local function inside a body.
	for _, fn := range g.declOrder {
		fd := g.Funcs[fn]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := info.Uses[id].(*types.Func); ok {
				if _, local := g.Funcs[callee]; local {
					g.Edges[fn] = append(g.Edges[fn], callee)
				}
			}
			return true
		})
	}

	// Entries: exported declarations and init functions first, then
	// functions referenced from package-level variable initializers.
	for _, fn := range g.declOrder {
		fd := g.Funcs[fn]
		if fd.Name.IsExported() {
			g.Entries = append(g.Entries, CallGraphEntry{fn, "exported " + fn.Name()})
		} else if fd.Name.Name == "init" && fd.Recv == nil {
			g.Entries = append(g.Entries, CallGraphEntry{fn, "package init"})
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					ast.Inspect(val, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok {
							return true
						}
						if fn, ok := info.Uses[id].(*types.Func); ok {
							if _, local := g.Funcs[fn]; local {
								g.Entries = append(g.Entries, CallGraphEntry{fn, "package variable initialisation"})
							}
						}
						return true
					})
				}
			}
		}
	}
	return g
}

// Package analysis is nanolint's physics-aware static-analysis framework.
// It is built only on the standard library (go/parser, go/ast, go/types) so
// the repository stays dependency-free and buildable offline.
//
// The framework loads and type-checks packages of this module (Loader),
// runs a set of rules (Analyzer) over each package (Pass), and applies
// `//nanolint:ignore <rule> <reason>` suppression directives to the
// resulting findings. The shipped rules guard the conventions the model's
// fidelity to the paper rests on:
//
//   - magicconst: float literals in the model packages that duplicate a
//     named constant exported from internal/units or internal/itrs.
//   - droppederr: error results discarded via `_` or bare call statements.
//   - floateq: direct ==/!= between floating-point expressions.
//   - libpanic: panic(...) reachable from exported library APIs in
//     internal/ packages, which should return errors instead.
//
// See cmd/nanolint for the command-line driver.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos is the violation's resolved file position.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Message describes the violation and how to fix it.
	Message string
	// Suppressed marks findings covered by a //nanolint:ignore directive.
	Suppressed bool
	// SuppressReason is the justification given in the directive.
	SuppressReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Pass hands one type-checked package to an analyzer's Run function.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// rule is the running analyzer's name, stamped on reports.
	rule   string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one nanolint rule.
type Analyzer struct {
	// Name is the rule name used in reports and suppression directives.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// All returns the full nanolint rule set.
func All() []*Analyzer {
	return []*Analyzer{MagicConst(), DroppedErr(), FloatEq(), LibPanic()}
}

// ByName selects analyzers from All by name.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, az := range All() {
		byName[az.Name] = az
	}
	out := make([]*Analyzer, 0, len(names))
	for _, name := range names {
		az, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", name)
		}
		out = append(out, az)
	}
	return out, nil
}

// Run runs the analyzers over the packages, applies suppression directives,
// and returns the findings (suppressed ones included, marked) sorted by
// position. Malformed directives are themselves reported under the
// "nanolint" rule.
func Run(pkgs []*Package, azs []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		findings = append(findings, sup.malformed...)
		for _, az := range azs {
			pass := &Pass{
				Pkg:  pkg,
				rule: az.Name,
				report: func(f Finding) {
					if reason, ok := sup.match(f); ok {
						f.Suppressed = true
						f.SuppressReason = reason
					}
					findings = append(findings, f)
				},
			}
			if err := az.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", az.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// Unsuppressed filters findings down to the ones not covered by a
// directive.
func Unsuppressed(findings []Finding) []Finding {
	out := make([]Finding, 0, len(findings))
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Package analysis is nanolint's physics-aware static-analysis framework.
// It is built only on the standard library (go/parser, go/ast, go/types) so
// the repository stays dependency-free and buildable offline.
//
// The framework loads and type-checks packages of this module (Loader),
// runs a set of rules (Analyzer) over each package (Pass) — in parallel
// across packages, with deterministic output — and applies
// `//nanolint:ignore <rule> <reason>` suppression directives to the
// resulting findings. Directives that suppress nothing are themselves
// reported (rule "unused-suppression"), so stale ignores cannot outlive
// the code they excused. The shipped rules guard the conventions the
// model's fidelity to the paper — and the repo's replay-determinism and
// zero-alloc contracts — rest on:
//
//   - magicconst: float literals in the model packages that duplicate a
//     named constant exported from internal/units or internal/itrs.
//   - droppederr: error results discarded via `_` or bare call statements.
//   - floateq: direct ==/!= between floating-point expressions.
//   - libpanic: panic(...) reachable from exported library APIs in
//     internal/ packages, which should return errors instead.
//   - hotalloc: heap allocations (make/new, closures, escaping composite
//     literals, string concatenation) inside functions annotated
//     //nanolint:hotpath — the compile-time complement to the
//     AllocsPerRun benchmark gates.
//   - maporder: range over a map feeding output, serialization, or float
//     accumulation in the replay-deterministic packages.
//   - wallclock: time.Now, the unseeded global math/rand source, and
//     multi-way select in the replay-deterministic packages.
//   - unsafeaudit: unsafe confined to allowlisted files, with unsafe.Slice
//     views guarded by an alignment check and loop fallback.
//   - ctxpoll: exported core run loops bounded by caller input must poll
//     (or forward) a context, per the PR 3 cancellation contract.
//
// Reachability-based passes share one cached per-package call graph
// (Package.CallGraph). See cmd/nanolint for the command-line driver,
// WriteSARIF for code-scanning output, and Baseline for ratcheted
// adoption.
package analysis

import (
	"fmt"
	"go/token"
	"sort"

	"nanobus/internal/parallel"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos is the violation's resolved file position.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Message describes the violation and how to fix it.
	Message string
	// Suppressed marks findings covered by a //nanolint:ignore directive.
	Suppressed bool
	// SuppressReason is the justification given in the directive.
	SuppressReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Pass hands one type-checked package to an analyzer's Run function.
type Pass struct {
	// Pkg is the package under analysis.
	Pkg *Package
	// rule is the running analyzer's name, stamped on reports.
	rule   string
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one nanolint rule.
type Analyzer struct {
	// Name is the rule name used in reports and suppression directives.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// All returns the full nanolint rule set.
func All() []*Analyzer {
	return []*Analyzer{
		MagicConst(), DroppedErr(), FloatEq(), LibPanic(),
		HotAlloc(), MapOrder(), WallClock(), UnsafeAudit(), CtxPoll(),
	}
}

// ByName selects analyzers from All by name.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, az := range All() {
		byName[az.Name] = az
	}
	out := make([]*Analyzer, 0, len(names))
	for _, name := range names {
		az, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", name)
		}
		out = append(out, az)
	}
	return out, nil
}

// Run runs the analyzers over the packages with default parallelism
// (GOMAXPROCS); see RunParallel.
func Run(pkgs []*Package, azs []*Analyzer) ([]Finding, error) {
	return RunParallel(pkgs, azs, 0)
}

// RunParallel runs the analyzers over the packages on up to
// parallel.Workers(workers) goroutines — one package per job, since the
// type-checker's per-package Info maps are not shared — applies
// suppression directives, reports stale directives as unused-suppression
// findings, and returns the findings (suppressed ones included, marked)
// sorted by (file, line, column, rule). The result is identical for every
// worker count: findings land in a per-package slab and are merged in
// package order before the final sort, and the shared token.FileSet is
// safe for concurrent position lookups. Malformed directives are reported
// under the "nanolint" rule.
func RunParallel(pkgs []*Package, azs []*Analyzer, workers int) ([]Finding, error) {
	ranSet := make(map[string]bool, len(azs))
	for _, az := range azs {
		ranSet[az.Name] = true
	}
	perPkg := make([][]Finding, len(pkgs))
	err := parallel.ForEach(workers, len(pkgs), func(i int) error {
		fs, err := runPackage(pkgs[i], azs, ranSet)
		if err != nil {
			return err
		}
		perPkg[i] = fs
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// runPackage applies every analyzer to one package and resolves its
// suppressions, including the stale-directive check.
func runPackage(pkg *Package, azs []*Analyzer, ranSet map[string]bool) ([]Finding, error) {
	sup := collectSuppressions(pkg)
	findings := append([]Finding(nil), sup.malformed...)
	for _, az := range azs {
		pass := &Pass{
			Pkg:  pkg,
			rule: az.Name,
			report: func(f Finding) {
				if reason, ok := sup.match(f); ok {
					f.Suppressed = true
					f.SuppressReason = reason
				}
				findings = append(findings, f)
			},
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", az.Name, pkg.ImportPath, err)
		}
	}
	return append(findings, sup.unused(ranSet)...), nil
}

// Unsuppressed filters findings down to the ones not covered by a
// directive.
func Unsuppressed(findings []Finding) []Finding {
	out := make([]Finding, 0, len(findings))
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bf(file string, line int, rule string, suppressed bool) Finding {
	return Finding{
		Pos:        token.Position{Filename: file, Line: line, Column: 1},
		Rule:       rule,
		Message:    "fixture finding",
		Suppressed: suppressed,
	}
}

func TestNewBaselineCountsUnsuppressed(t *testing.T) {
	findings := []Finding{
		bf("/mod/a.go", 1, "floateq", false),
		bf("/mod/a.go", 9, "floateq", false),
		bf("/mod/b.go", 2, "maporder", false),
		bf("/mod/b.go", 3, "maporder", true), // justified in source: not debt
	}
	b := NewBaseline(findings, "/mod")
	if got := b.Findings["a.go:floateq"]; got != 2 {
		t.Errorf("a.go:floateq = %d, want 2", got)
	}
	if got := b.Findings["b.go:maporder"]; got != 1 {
		t.Errorf("b.go:maporder = %d, want 1", got)
	}
	if len(b.Findings) != 2 {
		t.Errorf("baseline has %d keys, want 2: %v", len(b.Findings), b.Findings)
	}
}

func TestBaselineSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	b := NewBaseline([]Finding{bf("/mod/a.go", 1, "floateq", false)}, "/mod")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != baselineVersion || got.Findings["a.go:floateq"] != 1 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline has %d findings", len(b.Findings))
	}
}

func TestLoadBaselineVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"findings":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("version mismatch error = %v", err)
	}
}

func TestBaselineApplyToleratesUpToCount(t *testing.T) {
	b := &Baseline{Version: baselineVersion, Findings: map[string]int{"a.go:floateq": 1}}
	findings := []Finding{
		bf("/mod/a.go", 1, "floateq", false),  // tolerated (first of 1)
		bf("/mod/a.go", 9, "floateq", false),  // fresh: over the count
		bf("/mod/a.go", 5, "floateq", true),   // suppressed: never consumes
		bf("/mod/b.go", 2, "maporder", false), // fresh: no baseline entry
	}
	fresh := b.Apply(findings, "/mod")
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v, want 2 findings", fresh)
	}
	if fresh[0].Pos.Line != 9 || fresh[1].Rule != "maporder" {
		t.Errorf("fresh = %v", fresh)
	}
}

func TestBaselineSlackIsTheRatchet(t *testing.T) {
	b := &Baseline{Version: baselineVersion, Findings: map[string]int{
		"a.go:floateq":  2,
		"b.go:maporder": 1,
	}}
	// One floateq was fixed since the baseline was written.
	findings := []Finding{
		bf("/mod/a.go", 1, "floateq", false),
		bf("/mod/b.go", 2, "maporder", false),
	}
	slack := b.Slack(findings, "/mod")
	if len(slack) != 1 || !strings.Contains(slack[0], "a.go:floateq") {
		t.Errorf("slack = %v, want one a.go:floateq entry", slack)
	}
	// Exactly at the baseline: no slack.
	findings = append(findings, bf("/mod/a.go", 9, "floateq", false))
	if slack := b.Slack(findings, "/mod"); len(slack) != 0 {
		t.Errorf("slack at exact counts = %v, want none", slack)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// CtxPoll returns the ctxpoll analyzer, enforcing the PR 3 cancellation
// contract on the core package: every exported function whose loop is
// bounded by caller input (a slice of words, a cycle count, a tape) must
// poll its context — directly via ctx.Err(), or by forwarding ctx to a
// callee that does — so a cancelled request stops within one sampling
// interval instead of running an arbitrarily long batch to completion.
//
// A loop is "bounded by caller input" when its range expression or
// condition references a parameter of the function; loops over receiver
// state (Snapshot serialising s.samples, Reset clearing buffers) are
// outside the contract. The call graph supplies the function inventory so
// the pass shares work with libpanic.
func CtxPoll() *Analyzer {
	return &Analyzer{
		Name: "ctxpoll",
		Doc: "flags exported core functions with caller-bounded loops that " +
			"never poll or forward a context (PR 3 cancellation contract)",
		Run: runCtxPoll,
	}
}

func runCtxPoll(pass *Pass) error {
	if pass.Pkg.PathTail() != "core" {
		return nil
	}
	info := pass.Pkg.Info
	cg := pass.Pkg.CallGraph()
	for _, fn := range cg.FuncsInOrder() {
		fd := cg.Funcs[fn]
		if !fd.Name.IsExported() {
			continue
		}
		params, ctxObj := paramObjects(info, fd)
		if len(params) == 0 {
			continue
		}
		var loops []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				if loop.Cond != nil && referencesAny(info, loop.Cond, params) {
					loops = append(loops, loop)
				}
			case *ast.RangeStmt:
				if referencesAny(info, loop.X, params) {
					loops = append(loops, loop)
				}
			}
			return true
		})
		if len(loops) == 0 {
			continue
		}
		if ctxObj == nil {
			pass.Reportf(loops[0].Pos(),
				"exported %s loops over caller input but takes no context.Context; "+
					"core run loops must be cancellable (PR 3 contract)", fn.Name())
			continue
		}
		if !pollsOrForwards(info, fd.Body, ctxObj) {
			pass.Reportf(loops[0].Pos(),
				"exported %s takes a context but never polls ctx.Err() or forwards ctx; "+
					"poll once per sampling interval (PR 3 contract)", fn.Name())
		}
	}
	return nil
}

// paramObjects collects the declared objects of the function's parameters
// and identifies the context.Context parameter, if any.
func paramObjects(info *types.Info, fd *ast.FuncDecl) (map[types.Object]bool, types.Object) {
	params := map[types.Object]bool{}
	var ctxObj types.Object
	if fd.Type.Params == nil {
		return params, nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			params[obj] = true
			if isContextType(obj.Type()) {
				ctxObj = obj
			}
		}
	}
	return params, ctxObj
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// referencesAny reports whether the expression mentions any of the given
// objects, directly or through a selector (t.runs references t).
func referencesAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// pollsOrForwards reports whether the body calls Err() on the context
// parameter or passes it as an argument to any call (delegating the
// polling obligation to the callee, as PlayTape does through StepBatch).
func pollsOrForwards(info *types.Info, body *ast.BlockStmt, ctxObj types.Object) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return !ok
		}
		if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Err" {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID && info.Uses[id] == ctxObj {
				ok = true
			}
		}
		for _, arg := range call.Args {
			if id, isID := ast.Unparen(arg).(*ast.Ident); isID && info.Uses[id] == ctxObj {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

package nanobus_test

import (
	"context"
	"errors"
	"testing"

	"nanobus"
)

// TestFacadeSurface references every exported nanobus.* name, so a facade
// alias drifting from its internal package (renamed, retyped, or dropped)
// fails this file's compile, and executes the cheap constructors and
// helpers. Expensive experiment drivers are referenced as values only;
// integration_test.go runs them.
func TestFacadeSurface(t *testing.T) {
	// Constants.
	if nanobus.DefaultLength <= 0 || nanobus.DefaultIntervalCycles <= 0 {
		t.Error("default constants not positive")
	}
	if nanobus.FullCoupling >= 0 {
		t.Error("FullCoupling must be negative")
	}

	// Nodes.
	var _ nanobus.Node = nanobus.Node130
	var _ nanobus.Node = nanobus.Node90
	var _ nanobus.Node = nanobus.Node65
	var _ nanobus.Node = nanobus.Node45
	if len(nanobus.Nodes()) != 4 {
		t.Error("Nodes() != 4")
	}
	if _, ok := nanobus.NodeByName("65nm"); !ok {
		t.Error("NodeByName(65nm)")
	}
	if _, err := nanobus.ResolveNode("65nm"); err != nil {
		t.Error(err)
	}
	if _, err := nanobus.ResolveNode("14nm"); !errors.Is(err, nanobus.ErrUnknownNode) {
		t.Errorf("ResolveNode(14nm) = %v, want ErrUnknownNode", err)
	}

	// Bus construction: zero-magic config and functional options.
	var cfg nanobus.BusConfig
	cfg.Node = nanobus.Node90
	bus, err := nanobus.NewBus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var _ *nanobus.Bus = bus
	bus2, err := nanobus.New(nanobus.Node90,
		nanobus.WithEncoding("BI"),
		nanobus.WithLength(0.005),
		nanobus.WithInterval(1024),
		nanobus.WithMemoSize(10),
		nanobus.WithCouplingDepth(nanobus.FullCoupling),
		nanobus.WithThermal(nanobus.ThermalOptions{}),
		nanobus.WithWireTemps(),
		nanobus.WithOnSample(func(nanobus.Sample) {}),
		nanobus.WithoutSampleRetention(),
	)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := nanobus.NewEncoder("Gray")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nanobus.New(nanobus.Node90, nanobus.WithEncoder(enc)); err != nil {
		t.Fatal(err)
	}
	if _, err := nanobus.New(nanobus.Node90, nanobus.WithEncoding("nope")); !errors.Is(err, nanobus.ErrUnknownEncoding) {
		t.Errorf("WithEncoding(nope) = %v, want ErrUnknownEncoding", err)
	}

	// Stepping, batches, samples, errors.
	bus2.StepWord(0xFEED)
	bus2.StepIdle()
	if _, err := bus2.StepBatch(context.Background(), []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus2.StepIdleBatch(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if err := bus2.Finish(); err != nil {
		t.Fatal(err)
	}
	if bus2.Err() != nil || errors.Is(bus2.Err(), nanobus.ErrSimulatorPoisoned) {
		t.Error("healthy bus reports poisoned")
	}
	var _ []nanobus.Sample = bus2.Samples()
	var le nanobus.LineEnergy = bus2.TotalEnergy()
	_ = le.Total()
	bus2.Reset()

	// Run loops.
	var _ = nanobus.RunPair
	var _ = nanobus.RunSingle
	src := nanobus.NewSyntheticTrace(nanobus.DefaultSynthConfig(2))
	var _ nanobus.TraceSource = src
	var pr nanobus.PairResult
	pr, err = nanobus.RunPairContext(context.Background(), src, bus, bus2, 2048)
	if err != nil || pr.Cycles == 0 {
		t.Fatalf("RunPairContext: %v", err)
	}
	bus2.Reset()
	if _, err := nanobus.RunSingleContext(context.Background(),
		nanobus.NewSyntheticTrace(nanobus.DefaultSynthConfig(3)), bus2, "da", 1024); err != nil {
		t.Fatal(err)
	}

	// Encodings and crosstalk.
	if _, err := nanobus.NewDecoder("BI"); err != nil {
		t.Fatal(err)
	}
	if _, err := nanobus.NewEncoder("nope"); !errors.Is(err, nanobus.ErrUnknownEncoding) {
		t.Error("NewEncoder(nope) not ErrUnknownEncoding")
	}
	var _ nanobus.Encoder
	var _ nanobus.Decoder
	if len(nanobus.EncodingSchemes()) == 0 {
		t.Error("no encoding schemes")
	}
	h := nanobus.NewCrosstalkHistogram(8)
	var _ *nanobus.CrosstalkHistogram = h
	_ = nanobus.CrosstalkClass(0, 1, 0, 8)

	// Traces and workloads.
	var _ nanobus.TraceCycle
	var _ []nanobus.Benchmark = nanobus.Benchmarks()
	if len(nanobus.BenchmarksWithExtras()) <= len(nanobus.Benchmarks()) {
		t.Error("extras missing")
	}
	if _, ok := nanobus.BenchmarkByName("art"); !ok {
		t.Error("BenchmarkByName(art)")
	}

	// Capacitance extraction aliases (cheap paths only).
	var _ nanobus.BusLayout
	var _ nanobus.ExtractionOptions
	var _ *nanobus.ExtractionResult
	var _ nanobus.CapacitanceDistribution
	var _ = nanobus.ExtractBus
	var _ nanobus.Box
	var _ nanobus.Extraction3DOptions
	var _ *nanobus.Extraction3DResult
	var _ = nanobus.Extract3D
	var _ = nanobus.BusBoxes3D
	caps, err := nanobus.NewCapacitanceMatrix(nanobus.Node65, 8)
	if err != nil || caps.N() != 8 {
		t.Fatalf("NewCapacitanceMatrix: %v", err)
	}
	var _ *nanobus.CapacitanceMatrix = caps

	// Repeaters, thermal, field solver.
	plan, err := nanobus.PlanRepeaters(nanobus.Node90, nanobus.DefaultLength)
	if err != nil {
		t.Fatal(err)
	}
	var _ nanobus.RepeaterPlan = plan
	net, err := nanobus.NewThermalNetwork(nanobus.Node90, 4, nanobus.ThermalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var _ *nanobus.ThermalNetwork = net
	if nanobus.InterLayerRise(nanobus.Node90) <= 0 {
		t.Error("InterLayerRise")
	}
	var _ nanobus.FieldOptions
	var _ *nanobus.FieldGrid
	var _ = nanobus.NewFieldCrossSection

	// Experiment drivers and their option/result types: reference only.
	var _ nanobus.Table1Row
	var _ nanobus.Fig1BRow
	var _ nanobus.Fig1BOptions
	var _ nanobus.Sec33Row
	var _ nanobus.Sec33Options
	var _ nanobus.Fig3Cell
	var _ nanobus.Fig3Options
	var _ nanobus.Fig4Series
	var _ nanobus.Fig4Options
	var _ nanobus.Fig5Result
	var _ nanobus.Fig5Options
	var _ = nanobus.Table1
	var _ = nanobus.Fig1B
	var _ = nanobus.Sec33
	var _ = nanobus.Fig3
	var _ = nanobus.Fig4
	var _ = nanobus.Fig5

	// Extension analyses.
	var _ nanobus.L2BusResult
	var _ nanobus.L2BusOptions
	var _ nanobus.SubstrateResult
	var _ nanobus.ReliabilityParams
	var _ nanobus.BusReliability
	var _ nanobus.DelayReport
	var _ = nanobus.L2Bus
	var _ = nanobus.Substrate
	var _ = nanobus.AssessReliability
	var _ = nanobus.RelativeMTTF
	var _ = nanobus.AnalyzeDelay
	var _ = nanobus.DampingFactor
}

package nanobus

import (
	"fmt"

	"nanobus/internal/encoding"
)

// FullCoupling is the CouplingDepth value selecting the paper's full
// (all-pairs) coupling model.
const FullCoupling = -1

// Option mutates a BusConfig during New. Options are applied in order;
// the first failing option aborts construction.
type Option func(*BusConfig) error

// New builds a bus simulator for the node with functional options. Unlike
// the zero-magic BusConfig (where zero CouplingDepth means self-only
// capacitance), New defaults to the paper's full model: all coupling
// pairs, the default 10 mm length, the default 100K-cycle sampling
// interval, and the memoized energy kernel.
//
//	sim, err := nanobus.New(nanobus.Node90,
//	        nanobus.WithEncoding("BI"),
//	        nanobus.WithInterval(50_000))
func New(node Node, opts ...Option) (*Bus, error) {
	cfg := BusConfig{Node: node, CouplingDepth: FullCoupling}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("nanobus: nil option")
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	return NewBus(cfg)
}

// WithEncoding selects a low-power encoding scheme by name ("Unencoded",
// "BI", "OEBI", "CBI", "Gray", "T0"). Unknown names fail New with an
// error wrapping ErrUnknownEncoding.
func WithEncoding(name string) Option {
	return func(cfg *BusConfig) error {
		enc, err := encoding.New(name)
		if err != nil {
			return err
		}
		cfg.Encoder = enc
		return nil
	}
}

// WithEncoder installs an explicit encoder instance (e.g. a T0 encoder
// with a custom stride).
func WithEncoder(enc Encoder) Option {
	return func(cfg *BusConfig) error {
		cfg.Encoder = enc
		return nil
	}
}

// WithLength sets the bus length in meters.
func WithLength(meters float64) Option {
	return func(cfg *BusConfig) error {
		if meters <= 0 {
			return fmt.Errorf("nanobus: non-positive bus length %g", meters)
		}
		cfg.Length = meters
		return nil
	}
}

// WithInterval sets the sampling interval in cycles.
func WithInterval(cycles uint64) Option {
	return func(cfg *BusConfig) error {
		if cycles == 0 {
			return fmt.Errorf("nanobus: zero sampling interval")
		}
		cfg.IntervalCycles = cycles
		return nil
	}
}

// WithMemoSize sizes the transition-energy memo to 2^log2 entries; a
// negative log2 disables memoization (the direct kernel runs every
// cycle). Memoized and direct runs are bit-identical.
func WithMemoSize(log2 int) Option {
	return func(cfg *BusConfig) error {
		cfg.MemoSizeLog2 = log2
		return nil
	}
}

// WithCouplingDepth truncates the coupling matrix: 0 keeps self
// capacitance only, 1 nearest-neighbour, FullCoupling (New's default)
// keeps all pairs.
func WithCouplingDepth(depth int) Option {
	return func(cfg *BusConfig) error {
		cfg.CouplingDepth = depth
		return nil
	}
}

// WithThermal overrides the thermal-network options.
func WithThermal(opts ThermalOptions) Option {
	return func(cfg *BusConfig) error {
		cfg.Thermal = opts
		return nil
	}
}

// WithWireTemps copies the full per-wire temperature vector into every
// sample (Sample.WireTemps).
func WithWireTemps() Option {
	return func(cfg *BusConfig) error {
		cfg.TrackWireTemps = true
		return nil
	}
}

// WithOnSample streams every interval sample to fn as it closes.
func WithOnSample(fn func(Sample)) Option {
	return func(cfg *BusConfig) error {
		cfg.OnSample = fn
		return nil
	}
}

// WithoutSampleRetention disables in-memory sample retention; combine
// with WithOnSample for unbounded runs.
func WithoutSampleRetention() Option {
	return func(cfg *BusConfig) error {
		cfg.DropSamples = true
		return nil
	}
}

package nanobus_test

import (
	"math"
	"testing"

	"nanobus"
)

// TestNewMatchesExplicitConfig pins the option constructor to the
// equivalent explicit BusConfig, bit for bit.
func TestNewMatchesExplicitConfig(t *testing.T) {
	run := func(sim *nanobus.Bus) float64 {
		t.Helper()
		for addr := uint32(0); addr < 4096; addr += 4 {
			sim.StepWord(addr * 2718)
		}
		if err := sim.Finish(); err != nil {
			t.Fatal(err)
		}
		return sim.TotalEnergy().Total()
	}

	enc, err := nanobus.NewEncoder("BI")
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := nanobus.NewBus(nanobus.BusConfig{
		Node:           nanobus.Node65,
		Encoder:        enc,
		Length:         0.004,
		IntervalCycles: 1000,
		CouplingDepth:  nanobus.FullCoupling,
	})
	if err != nil {
		t.Fatal(err)
	}
	optioned, err := nanobus.New(nanobus.Node65,
		nanobus.WithEncoding("BI"),
		nanobus.WithLength(0.004),
		nanobus.WithInterval(1000),
	)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := run(explicit), run(optioned)
	if math.Float64bits(e1) != math.Float64bits(e2) {
		t.Fatalf("option constructor drifted: %g != %g", e1, e2)
	}
	if len(explicit.Samples()) != len(optioned.Samples()) {
		t.Fatal("sample counts differ")
	}
}

// TestNewDefaultsToFullCoupling: New without options uses the paper's
// full model, which dissipates strictly more energy than the self-only
// zero BusConfig on a coupling-heavy pattern.
func TestNewDefaultsToFullCoupling(t *testing.T) {
	full, err := nanobus.New(nanobus.Node90)
	if err != nil {
		t.Fatal(err)
	}
	selfOnly, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node90})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		w := uint32(0x5555_5555)
		if i%2 == 1 {
			w = 0xAAAA_AAAA
		}
		full.StepWord(w)
		selfOnly.StepWord(w)
	}
	if err := full.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := selfOnly.Finish(); err != nil {
		t.Fatal(err)
	}
	if full.TotalEnergy().Total() <= selfOnly.TotalEnergy().Total() {
		t.Fatalf("full model %g <= self-only %g: New is not defaulting to full coupling",
			full.TotalEnergy().Total(), selfOnly.TotalEnergy().Total())
	}
	if full.TotalEnergy().CoupAdj <= 0 {
		t.Fatal("no adjacent-coupling energy under the full model")
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := nanobus.New(nanobus.Node90, nanobus.WithLength(-1)); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := nanobus.New(nanobus.Node90, nanobus.WithInterval(0)); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := nanobus.New(nanobus.Node90, nil); err == nil {
		t.Error("nil option accepted")
	}
}

// Command nanobus regenerates the paper's tables and figures from the
// library. Each subcommand maps to one experiment of DESIGN.md's index:
//
//	nanobus table1                     # Table 1 + derived model parameters
//	nanobus fig1b  [-wires N]          # capacitance distribution (BEM)
//	nanobus sec33                      # non-adjacent coupling study
//	nanobus fig3   [-cycles N] [...]   # encoding-effectiveness energies
//	nanobus fig4   [-cycles N] [...]   # transient energy/temperature CSV
//	nanobus fig5   [-cycles N] [...]   # idle-window cooling study
//	nanobus dtheta                     # Eq. 7 inter-layer rise per node
//	nanobus steady [-node X]           # analytic steady-state temperatures
//	nanobus stats  [-bench X]          # address-stream statistics
//
// Global flags (before the subcommand) profile the run:
//
//	nanobus -cpuprofile cpu.pprof fig3 ...
//	nanobus -memprofile mem.pprof fig4 ...
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nanobus"
	"nanobus/internal/encoding"
	"nanobus/internal/expt"
	"nanobus/internal/extract3d"
	"nanobus/internal/itrs"
	"nanobus/internal/thermal"
	"nanobus/internal/trace"
	"nanobus/internal/units"
	"nanobus/internal/workload"
)

func main() {
	os.Exit(realMain())
}

// realMain carries the exit code back to main so the profiling defers run
// before the process exits (os.Exit skips deferred calls).
func realMain() int {
	global := flag.NewFlagSet("nanobus", flag.ExitOnError)
	global.Usage = usage
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := global.String("memprofile", "", "write a heap profile at exit to this file")
	// Parse stops at the first non-flag argument: the subcommand.
	if err := global.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if global.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nanobus: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nanobus: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nanobus: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "nanobus: -memprofile: %v\n", err)
			}
		}()
	}
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "fig1b":
		err = cmdFig1B(args)
	case "sec33":
		err = cmdSec33(args)
	case "fig3":
		err = cmdFig3(args)
	case "fig4":
		err = cmdFig4(args)
	case "fig5":
		err = cmdFig5(args)
	case "dtheta":
		err = cmdDTheta(args)
	case "steady":
		err = cmdSteady(args)
	case "stats":
		err = cmdStats(args)
	case "l2bus":
		err = cmdL2Bus(args)
	case "substrate":
		err = cmdSubstrate(args)
	case "reliability":
		err = cmdReliability(args)
	case "delaytemp":
		err = cmdDelayTemp(args)
	case "baselines":
		err = cmdBaselines(args)
	case "encstats":
		err = cmdEncStats(args)
	case "validate":
		err = cmdValidate(args)
	case "repsweep":
		err = cmdRepSweep(args)
	case "socmap":
		err = cmdSoCMap(args)
	case "cooling":
		err = cmdCooling(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nanobus: unknown command %q\n", cmd)
		usage()
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanobus %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nanobus [-cpuprofile f] [-memprofile f] <command> [flags]

commands:
  table1   reproduce Table 1 with derived repeater/thermal parameters
  fig1b    capacitance distribution per node (BEM extraction, Fig. 1b)
  sec33    non-adjacent coupling underestimation study (Sec. 3.3)
  fig3     encoding-effectiveness energy study (Fig. 3)
  fig4     transient energy/temperature series (Fig. 4; CSV with -csv)
  fig5     intermittent-idling study (Fig. 5)
  dtheta   Eq. 7 inter-layer temperature rise per node
  steady   analytic steady-state wire temperatures for a uniform load
  stats    address-stream statistics for a benchmark

extension studies (beyond the paper's figures):
  l2bus       L1->L2 address-bus energy via the cache hierarchy
  substrate   combined substrate-temperature-variation effect
  reliability per-wire electromigration lifetime (Black's equation)
  delaytemp   temperature-dependent RC delay + RLC damping check
  baselines   dynamic model vs worst-case [6] and avg-activity [8] models
  encstats    invert-decision rates of the BI-family schemes on a trace
  validate    lumped RC network vs 2-D finite-difference field solution
  repsweep    repeater-count energy-delay tradeoff sweep
  socmap      whole-SoC multi-bus thermal map, streamed from nanobusd
  cooling     adaptive cooling-code controller: peak temp vs bandwidth overhead

run 'nanobus <command> -h' for per-command flags`)
}

func parseNodes(spec string) ([]itrs.Node, error) {
	if spec == "" || spec == "all" {
		return itrs.Nodes(), nil
	}
	var out []itrs.Node
	for _, name := range strings.Split(spec, ",") {
		n, ok := itrs.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown node %q (have %s)", name, strings.Join(itrs.Names(), ", "))
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	nodes := fs.String("nodes", "all", "comma-separated node list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodes(*nodes)
	if err != nil {
		return err
	}
	rows, err := expt.Table1(ns...)
	if err != nil {
		return err
	}
	return expt.PrintTable1(os.Stdout, rows)
}

func cmdFig1B(args []string) error {
	fs := flag.NewFlagSet("fig1b", flag.ExitOnError)
	wires := fs.Int("wires", 32, "bus width to extract")
	panels := fs.Int("panels", 6, "BEM panels per conductor edge")
	nodes := fs.String("nodes", "all", "comma-separated node list")
	threeD := fs.Bool("3d", false, "use the 3-D extractor on a reduced bus (slow; 7 wires)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodes(*nodes)
	if err != nil {
		return err
	}
	if *threeD {
		return fig1b3D(ns)
	}
	rows, err := expt.Fig1B(expt.Fig1BOptions{Wires: *wires, PanelsPerEdge: *panels}, ns...)
	if err != nil {
		return err
	}
	return expt.PrintFig1B(os.Stdout, rows)
}

// fig1b3D reports the capacitance distribution from the 3-D extractor on a
// finite-length 7-wire bus (the dense solver bounds the problem size).
func fig1b3D(nodes []itrs.Node) error {
	fmt.Println("node    Cgnd%  CC1%  CC2%  CC3%  nonadj%  (3-D, 7 wires, 20 pitches long)")
	for _, n := range nodes {
		boxes := extract3d.BusBoxes(n, 7, 20*n.Pitch())
		res, err := extract3d.Extract(boxes, n.EpsRel, extract3d.Options{TargetPanels: 220, GroundPlane: true})
		if err != nil {
			return err
		}
		const mid = 3
		cg := res.SelfToGround(mid)
		c1 := res.Coupling(mid, mid+1) + res.Coupling(mid, mid-1)
		c2 := res.Coupling(mid, mid+2) + res.Coupling(mid, mid-2)
		c3 := res.Coupling(mid, mid+3) + res.Coupling(mid, mid-3)
		tot := cg + c1 + c2 + c3
		fmt.Printf("%-7s %5.1f %5.1f %5.1f %5.1f %7.1f\n",
			n.Name, 100*cg/tot, 100*c1/tot, 100*c2/tot, 100*c3/tot, 100*(c2+c3)/tot)
	}
	return nil
}

func cmdSec33(args []string) error {
	fs := flag.NewFlagSet("sec33", flag.ExitOnError)
	wires := fs.Int("wires", 32, "bus width")
	nodes := fs.String("nodes", "all", "comma-separated node list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodes(*nodes)
	if err != nil {
		return err
	}
	rows, err := expt.Sec33(expt.Sec33Options{Wires: *wires}, ns...)
	if err != nil {
		return err
	}
	return expt.PrintSec33(os.Stdout, rows)
}

func cmdFig3(args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 2_000_000, "measured cycles per benchmark (paper: 20M)")
	benches := fs.String("benchmarks", "", "comma-separated benchmark list (default all 8)")
	nodes := fs.String("nodes", "all", "comma-separated node list")
	schemes := fs.String("schemes", "", "comma-separated encoding list (default paper's 4; 'ext' adds Gray,T0)")
	detail := fs.Bool("detail", false, "print per-benchmark rows, not just means")
	workers := fs.Int("workers", 0, "sweep-pool workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodes(*nodes)
	if err != nil {
		return err
	}
	opts := expt.Fig3Options{Cycles: *cycles, Nodes: ns, Workers: *workers}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	switch *schemes {
	case "":
	case "ext":
		opts.Schemes = []string{"Unencoded", "BI", "OEBI", "CBI", "Gray", "T0"}
	default:
		opts.Schemes = strings.Split(*schemes, ",")
	}
	cells, err := expt.Fig3(opts)
	if err != nil {
		return err
	}
	if !*detail {
		cells = expt.MeanCells(cells)
	}
	return expt.PrintFig3(os.Stdout, cells)
}

func cmdFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 30_000_000, "simulated cycles (paper: 300M)")
	interval := fs.Uint64("interval", 100_000, "sampling interval in cycles")
	node := fs.String("node", "130nm", "technology node")
	benches := fs.String("benchmarks", "eon,swim", "comma-separated benchmark list")
	csv := fs.Bool("csv", false, "emit full CSV series instead of the summary")
	timing := fs.Bool("timing", false, "insert cache-miss stall cycles (timing-aware extension)")
	workers := fs.Int("workers", 0, "sweep-pool workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	series, err := expt.Fig4(expt.Fig4Options{
		Cycles:         *cycles,
		IntervalCycles: *interval,
		Node:           n,
		Benchmarks:     strings.Split(*benches, ","),
		Timing:         *timing,
		Workers:        *workers,
	})
	if err != nil {
		return err
	}
	if *csv {
		for _, s := range series {
			if err := expt.WriteFig4CSV(os.Stdout, s); err != nil {
				return err
			}
		}
		return nil
	}
	return expt.PrintFig4Summary(os.Stdout, series)
}

func cmdFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 40_000_000, "simulated cycles")
	idleStart := fs.Uint64("idle-start", 0, "idle window start cycle (0 = mid-run)")
	idleLen := fs.Uint64("idle-length", 1_000_000, "idle window length in cycles")
	node := fs.String("node", "130nm", "technology node")
	bench := fs.String("benchmark", "swim", "benchmark")
	csv := fs.Bool("csv", false, "emit the full CSV series too")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	res, err := expt.Fig5(expt.Fig5Options{
		Cycles:     *cycles,
		IdleStart:  *idleStart,
		IdleLength: *idleLen,
		Node:       n,
		Benchmark:  *bench,
	})
	if err != nil {
		return err
	}
	fmt.Printf("idle window: cycles [%d, %d)\n", res.IdleStart, res.IdleStart+res.IdleLength)
	fmt.Printf("max temp before idle: %.4f K\n", res.TempBeforeIdle)
	fmt.Printf("max temp after idle:  %.4f K\n", res.TempAfterIdle)
	fmt.Printf("cooling across idle:  %.4f K (rise above ambient: %.4f K)\n",
		res.DropK, res.TempBeforeIdle-units.AmbientK)
	if *csv {
		return expt.WriteFig4CSV(os.Stdout, res.Series)
	}
	return nil
}

func cmdDTheta(args []string) error {
	fs := flag.NewFlagSet("dtheta", flag.ExitOnError)
	nodes := fs.String("nodes", "all", "comma-separated node list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseNodes(*nodes)
	if err != nil {
		return err
	}
	fmt.Println("node    Δθ (K)   layers")
	for _, n := range ns {
		fmt.Printf("%-7s %7.2f   %d\n", n.Name, thermal.InterLayerRise(n), n.MetalLayers)
	}
	return nil
}

func cmdSteady(args []string) error {
	fs := flag.NewFlagSet("steady", flag.ExitOnError)
	node := fs.String("node", "130nm", "technology node")
	wires := fs.Int("wires", 32, "bus width")
	power := fs.Float64("power", 1.0, "uniform dynamic power per wire (W/m)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	net, err := nanobus.NewThermalNetwork(n, *wires, nanobus.ThermalOptions{})
	if err != nil {
		return err
	}
	p := make([]float64, *wires)
	for i := range p {
		p[i] = *power
	}
	ss, err := net.SteadyState(p)
	if err != nil {
		return err
	}
	fmt.Printf("steady-state temperatures, %s, %d wires, %.2f W/m per wire (ambient %.2f K):\n",
		n.Name, *wires, *power, units.AmbientK)
	for i, temp := range ss {
		fmt.Printf("  wire %2d: %.3f K (+%.3f)\n", i, temp, temp-units.AmbientK)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	bench := fs.String("bench", "eon", "benchmark name")
	cycles := fs.Uint64("cycles", 1_000_000, "cycles to observe after warm-up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	b, ok := workload.ByName(*bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (have %s)", *bench, strings.Join(workload.Names(), ", "))
	}
	src, err := b.NewWarmSource(b.WarmupCycles)
	if err != nil {
		return err
	}
	iaX := encoding.NewCrosstalkHistogram(32)
	daX := encoding.NewCrosstalkHistogram(32)
	var ia, da trace.StreamStats
	var got uint64
	for got < *cycles {
		c, ok := src.Next()
		if !ok {
			break
		}
		got++
		ia.Observe(c.IAddr, c.IValid)
		da.Observe(c.DAddr, c.DValid)
		if c.IValid {
			iaX.Observe(uint64(c.IAddr))
		}
		if c.DValid {
			daX.Observe(uint64(c.DAddr))
		}
	}
	fmt.Printf("%s (%s): %d cycles after %d warm-up\n", b.Name, b.Class, got, b.WarmupCycles)
	fmt.Printf("  IA: duty %.3f, mean Hamming %.2f, frac>16 %.5f, mean crosstalk class %.3f\n",
		ia.DutyFactor(), ia.MeanHamming(), ia.FracAboveHalf(), iaX.MeanClass())
	fmt.Printf("  DA: duty %.3f, mean Hamming %.2f, frac>16 %.5f, mean crosstalk class %.3f\n",
		da.DutyFactor(), da.MeanHamming(), da.FracAboveHalf(), daX.MeanClass())
	fmt.Printf("  DA crosstalk classes 0C..4C: %.3f %.3f %.3f %.3f %.3f\n",
		daX.Fraction(0), daX.Fraction(1), daX.Fraction(2), daX.Fraction(3), daX.Fraction(4))
	return nil
}

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"nanobus/client"
	"nanobus/internal/expt"
	"nanobus/internal/itrs"
)

// cmdSoCMap runs the whole-SoC interconnect thermal-map scenario against
// a running nanobusd: four floorplan buses in one multi-bus session,
// thermally coupled on the metal layer, with per-interval temperature
// frames streamed back over the chosen transport.
func cmdSoCMap(args []string) error {
	fs := flag.NewFlagSet("socmap", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "nanobusd base URL (HTTP transport)")
	nbwpAddr := fs.String("nbwp", "", "nanobusd NBWP host:port (overrides -addr)")
	cycles := fs.Uint64("cycles", 200_000, "lockstep cycles")
	interval := fs.Uint64("interval", 0, "sampling interval cycles (0 = cycles/10)")
	node := fs.String("node", "130nm", "technology node")
	bench := fs.String("bench", "swim", "benchmark")
	gap := fs.Float64("gap", 0, "lateral bus gap in wire pitches (0 = default)")
	nocouple := fs.Bool("nocouple", false, "sever lateral thermal coupling (isolation baseline)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	ctx := context.Background()
	var open expt.MapOpener
	if *nbwpAddr != "" {
		nc, err := client.DialNBWP(ctx, *nbwpAddr)
		if err != nil {
			return err
		}
		defer nc.Close()
		open = expt.NBWPMapOpener(ctx, nc)
	} else {
		open = expt.HTTPMapOpener(ctx, client.New(*addr))
	}
	res, err := expt.SoCMap(ctx, expt.SoCMapOptions{
		Benchmark:          *bench,
		Node:               n,
		Cycles:             *cycles,
		IntervalCycles:     *interval,
		GapPitches:         *gap,
		DisableBusCoupling: *nocouple,
	}, open)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "SoC map: %s @ %s, %d cycles, total %.4g J (hottest: bus %s wire %d, %.2f K)\n",
		res.Benchmark, res.Node, res.Cycles, res.TotalEnergyJ, res.Buses[res.MaxBus], res.MaxWire, res.MaxTempK)
	fmt.Fprintln(tw, "bus\tduty\tenergy J\tfinal max K")
	for i, label := range res.Buses {
		maxT := 0.0
		for _, t := range res.TempsK[i] {
			if t > maxT {
				maxT = t
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.4g\t%.3f\n", label, res.Duty[i], res.PerBusEnergyJ[i], maxT)
	}
	fmt.Fprintln(tw, "\nframe end_cycle\tper-bus max K")
	for _, f := range res.Frames {
		fmt.Fprintf(tw, "%d", f.EndCycle)
		for _, temps := range f.TempsK {
			maxT := 0.0
			for _, t := range temps {
				if t > maxT {
					maxT = t
				}
			}
			fmt.Fprintf(tw, "\t%.3f", maxT)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

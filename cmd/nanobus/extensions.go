package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"text/tabwriter"

	"nanobus"
	"nanobus/internal/delay"
	"nanobus/internal/expt"
	"nanobus/internal/fdm"
	"nanobus/internal/itrs"
	"nanobus/internal/reliability"
	"nanobus/internal/repeater"
	"nanobus/internal/units"
)

// cmdL2Bus runs the L1->L2 address-bus extension study across benchmarks on
// the shared sweep pool.
func cmdL2Bus(args []string) error {
	fs := flag.NewFlagSet("l2bus", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 2_000_000, "measured cycles")
	node := fs.String("node", "130nm", "technology node")
	bench := fs.String("bench", "", "comma-separated benchmark list ('' = all eight)")
	workers := fs.Int("workers", 0, "sweep-pool workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	results, err := expt.L2BusSweep(benchList(*bench),
		expt.L2BusOptions{Cycles: *cycles, Node: n}, *workers)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tL2 duty\tDL1 miss\tIL1 miss\tE(L2 bus) J\tE(DA) J\tE(IA) J")
	for _, res := range results {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.4g\t%.4g\t%.4g\n",
			res.Benchmark, res.Duty, res.DL1MissRate, res.IL1MissRate,
			res.L2BusEnergy, res.DABusEnergy, res.IABusEnergy)
	}
	return tw.Flush()
}

// benchList turns a comma-separated -bench value into the sweep argument:
// nil (empty string) means every benchmark.
func benchList(spec string) []string {
	if spec == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(spec, ",") {
		out = append(out, strings.TrimSpace(s))
	}
	return out
}

// cmdSubstrate runs the substrate-temperature-variation extension.
func cmdSubstrate(args []string) error {
	fs := flag.NewFlagSet("substrate", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 20_000_000, "simulated cycles")
	period := fs.Uint64("period", 5_000_000, "substrate square-wave half period (cycles)")
	swing := fs.Float64("swing", 10, "substrate swing half-amplitude (K)")
	node := fs.String("node", "130nm", "technology node")
	bench := fs.String("bench", "swim", "benchmark")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	res, err := expt.Substrate(*bench, n, *cycles, *period, *swing)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %s, substrate swing ±%.1f K every %d cycles:\n",
		res.Benchmark, res.SwingK, *period)
	fmt.Printf("  peak wire temp, fixed substrate:   %.3f K\n", res.MaxTempFixed)
	fmt.Printf("  peak wire temp, varying substrate: %.3f K (+%.3f K)\n",
		res.MaxTempVarying, res.MaxTempVarying-res.MaxTempFixed)
	return nil
}

// cmdCooling runs the adaptive cooling-code study: per (node, benchmark)
// cell, the self-calibrated controller's defended ceiling versus the
// static base encoder's peak, with switch points and bandwidth overhead.
func cmdCooling(args []string) error {
	fs := flag.NewFlagSet("cooling", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 20_000_000, "simulated cycles per run")
	interval := fs.Uint64("interval", 100_000, "sampling interval (controller decision cadence)")
	nodeSpec := fs.String("nodes", "all", "comma-separated node list, or 'all'")
	bench := fs.String("bench", "", "comma-separated benchmark list ('' = mcf,art,equake)")
	base := fs.String("base", "BI", "base (performance) encoding scheme")
	cool := fs.String("cool", "CoolSpread", "cool (thermal-relief) encoding scheme")
	buses := fs.Int("buses", 0, "add a K-bus static comparison leg (0 = scalar only)")
	workers := fs.Int("workers", 0, "cell concurrency (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nodes, err := parseNodes(*nodeSpec)
	if err != nil {
		return err
	}
	cells, err := expt.Cooling(expt.CoolingOptions{
		Cycles:         *cycles,
		IntervalCycles: *interval,
		Nodes:          nodes,
		Benchmarks:     benchList(*bench),
		Base:           *base,
		Cool:           *cool,
		Buses:          *buses,
		Workers:        *workers,
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tbenchmark\tceiling K\tpeak adaptive K\tpeak base K\tpeak cool K\tswitches\tdefended\toverhead %")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%.6f\t%.6f\t%.6f\t%.6f\t%d\t%v\t%.1f\n",
			c.Node, c.Benchmark, c.CeilingK, c.PeakAdaptiveK, c.PeakBaseK, c.PeakCoolK,
			len(c.Switches), c.Defended && c.BaseExceeds, c.OverheadPct)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, c := range cells {
		for _, sw := range c.Switches {
			fmt.Printf("  %s/%s: cycle %d %s -> %s at %.6f K\n",
				c.Node, c.Benchmark, sw.Cycle, sw.From, sw.To, sw.TempK)
		}
		if c.MultiBus != nil {
			fmt.Printf("  %s/%s: %d-bus grid peak %s %.6f K, %s %.6f K\n",
				c.Node, c.Benchmark, c.MultiBus.Buses,
				c.Base, c.MultiBus.PeakBaseK, c.Cool, c.MultiBus.PeakCoolK)
		}
	}
	return nil
}

// cmdReliability grades electromigration lifetime from a workload's
// steady-state wire temperatures and currents.
func cmdReliability(args []string) error {
	fs := flag.NewFlagSet("reliability", flag.ExitOnError)
	node := fs.String("node", "130nm", "technology node")
	power := fs.Float64("power", 1.0, "uniform dynamic power per wire (W/m)")
	hotWire := fs.Int("hot-wire", 16, "index of a wire given 3x power (hot spot)")
	wires := fs.Int("wires", 32, "bus width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	net, err := nanobus.NewThermalNetwork(n, *wires, nanobus.ThermalOptions{})
	if err != nil {
		return err
	}
	p := make([]float64, *wires)
	for i := range p {
		p[i] = *power
	}
	if *hotWire >= 0 && *hotWire < *wires {
		p[*hotWire] = 3 * *power
	}
	temps, err := net.SteadyState(p)
	if err != nil {
		return err
	}
	currents := make([]float64, *wires)
	for i := range currents {
		currents[i], err = reliability.RMSCurrentDensity(p[i], units.RhoCopper, n.WireWidth, n.WireThickness)
		if err != nil {
			return err
		}
	}
	refJ, err := reliability.RMSCurrentDensity(*power, units.RhoCopper, n.WireWidth, n.WireThickness)
	if err != nil {
		return err
	}
	a, err := reliability.AssessBus(reliability.Params{}, temps, currents, units.AmbientK, refJ)
	if err != nil {
		return err
	}
	fmt.Printf("EM assessment, %s, %d wires, %.2f W/m (wire %d at 3x):\n",
		n.Name, *wires, *power, *hotWire)
	fmt.Printf("  worst wire: #%d at %.3f K, relative MTTF %.4f\n",
		a.WorstWire, a.Wires[a.WorstWire].TempK, a.WorstRelMTTF)
	fmt.Printf("  uniform-temperature model would predict %.4f (%.1fx more optimistic)\n",
		a.UniformModelRelMTTF, a.UniformModelRelMTTF/a.WorstRelMTTF)
	return nil
}

// cmdRepSweep reports the energy-delay tradeoff of scaling the repeater
// count away from the delay-optimal point.
func cmdRepSweep(args []string) error {
	fs := flag.NewFlagSet("repsweep", flag.ExitOnError)
	node := fs.String("node", "130nm", "technology node")
	length := fs.Float64("length", 0.01, "line length (m)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	inv := repeater.DefaultInverter(n)
	points, err := repeater.Sweep(n, *length, inv, []float64{0.25, 0.5, 0.75, 1, 1.5, 2})
	if err != nil {
		return err
	}
	// The self-energy share Crep adds per full transition of one wire:
	// 0.5*(cline*L + Crep)*Vdd^2.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k scale\trepeaters\tCrep (pF)\tdelay (ns)\tself E/transition (pJ)")
	for _, p := range points {
		selfE := 0.5 * (n.CLine*(*length) + p.Crep) * n.Vdd * n.Vdd
		fmt.Fprintf(tw, "%.2f\t%.1f\t%.2f\t%.3f\t%.3f\n",
			p.Scale, p.CountK, p.Crep*1e12, p.WireDelay*1e9, selfE*1e12)
	}
	return tw.Flush()
}

// cmdValidate cross-checks the lumped thermal-RC network against the 2-D
// finite-difference field solver on a hot-spot load.
func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	node := fs.String("node", "130nm", "technology node")
	wires := fs.Int("wires", 5, "bus width (field solve cost grows with width)")
	power := fs.Float64("power", 20, "hot centre wire power (W/m)")
	cells := fs.Int("cells", 5, "FDM cells per wire width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	p := make([]float64, *wires)
	p[*wires/2] = *power
	g, err := fdm.NewBusCrossSection(n, p, units.AmbientK, fdm.Options{CellsPerWidth: *cells})
	if err != nil {
		return err
	}
	sweeps, err := g.SolveSteadyState(1e-8, 100000)
	if err != nil {
		return err
	}
	field, err := g.WireTemps()
	if err != nil {
		return err
	}
	net, err := nanobus.NewThermalNetwork(n, *wires, nanobus.ThermalOptions{DisableInterLayer: true})
	if err != nil {
		return err
	}
	rc, err := net.SteadyState(p)
	if err != nil {
		return err
	}
	nx, ny := g.Cells()
	fmt.Printf("field solve: %dx%d cells, %d SOR sweeps; hot wire %d at %.2f W/m\n",
		nx, ny, sweeps, *wires/2, *power)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "wire\tfield rise (K)\tRC rise (K)\tratio")
	for i := range field {
		fRise := field[i] - units.AmbientK
		rcRise := rc[i] - units.AmbientK
		ratio := math.NaN()
		if fRise != 0 { //nanolint:ignore floateq exact-zero guard before division; a zero rise leaves the ratio undefined
			ratio = rcRise / fRise
		}
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.2f\n", i, fRise, rcRise, ratio)
	}
	return tw.Flush()
}

// cmdEncStats reports how often each BI-family scheme actually inverts on
// a real address stream.
func cmdEncStats(args []string) error {
	fs := flag.NewFlagSet("encstats", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 1_000_000, "observed cycles")
	bench := fs.String("bench", "eon", "comma-separated benchmark list ('' = all eight)")
	bus := fs.String("bus", "DA", "bus: DA or IA")
	workers := fs.Int("workers", 0, "sweep-pool workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := expt.EncStatsSweep(benchList(*bench),
		expt.EncStatsOptions{Cycles: *cycles, Bus: *bus}, *workers)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tscheme\tdriven words\tinvert rate\tOEBI modes 00/01/10/11")
	for _, r := range rows {
		modeStr := "-"
		if r.Scheme == "OEBI" {
			modeStr = fmt.Sprintf("%.3f/%.3f/%.3f/%.3f",
				r.OEBIModes[0], r.OEBIModes[1], r.OEBIModes[2], r.OEBIModes[3])
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\t%s\n", r.Benchmark, r.Scheme, r.Cycles, r.InvertRate, modeStr)
	}
	return tw.Flush()
}

// cmdBaselines compares the paper's dynamic thermal model against the
// worst-case and average-activity prior-art models it criticises.
func cmdBaselines(args []string) error {
	fs := flag.NewFlagSet("baselines", flag.ExitOnError)
	cycles := fs.Uint64("cycles", 4_000_000, "simulated cycles")
	node := fs.String("node", "130nm", "technology node")
	bench := fs.String("bench", "swim", "comma-separated benchmark list ('' = all eight)")
	workers := fs.Int("workers", 0, "sweep-pool workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, ok := itrs.ByName(*node)
	if !ok {
		return fmt.Errorf("unknown node %q", *node)
	}
	results, err := expt.BaselinesSweep(benchList(*bench), n, *cycles, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("thermal model comparison, DA bus on %s (%d cycles, ambient %.2f K):\n",
		n.Name, *cycles, units.AmbientK)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tdyn max K\tdyn avg K\tspread K\tavg-activity [8] K\tworst-case [6] K\toverest. K")
	for _, res := range results {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.4f\t%.3f\t%.3f\t%.1f\n",
			res.Benchmark, res.DynamicMaxTemp, res.DynamicAvgTemp, res.DynamicSpread,
			res.AvgActivityTemp, res.WorstCaseTemp, res.WorstCaseTemp-res.DynamicMaxTemp)
	}
	return tw.Flush()
}

// cmdDelayTemp reports the thermal delay degradation and damping check.
func cmdDelayTemp(args []string) error {
	fs := flag.NewFlagSet("delaytemp", flag.ExitOnError)
	temp := fs.Float64("temp", 0, "wire temperature in K (0 = ambient+20)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reports, err := delay.AnalyzeAll(*temp)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "node\tdelay@293K (ns)\tdelay@hot (ns)\tT hot (K)\tdegradation%\tdamping ζ (10mm)")
	for _, r := range reports {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.2f\t%.2f\t%.1f\n",
			r.Node.Name, r.RefDelay*1e9, r.HotDelay*1e9, r.HotTempK,
			r.DegradationPct, r.Damping)
	}
	return tw.Flush()
}

package main

import (
	"testing"
)

func TestParseNodes(t *testing.T) {
	all, err := parseNodes("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("parseNodes(all) = %d nodes, %v", len(all), err)
	}
	empty, err := parseNodes("")
	if err != nil || len(empty) != 4 {
		t.Fatalf("parseNodes('') = %d nodes, %v", len(empty), err)
	}
	two, err := parseNodes("130nm, 45nm")
	if err != nil || len(two) != 2 || two[1].Name != "45nm" {
		t.Fatalf("parseNodes pair = %+v, %v", two, err)
	}
	if _, err := parseNodes("22nm"); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestCmdTable1(t *testing.T) {
	if err := cmdTable1([]string{"-nodes", "130nm"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTable1([]string{"-nodes", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdSec33(t *testing.T) {
	if err := cmdSec33([]string{"-wires", "8", "-nodes", "130nm"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSec33([]string{"-wires", "2"}); err == nil {
		t.Error("2-wire accepted")
	}
}

func TestCmdDTheta(t *testing.T) {
	if err := cmdDTheta(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSteady(t *testing.T) {
	if err := cmdSteady([]string{"-node", "90nm", "-wires", "4", "-power", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSteady([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdDelayTemp(t *testing.T) {
	if err := cmdDelayTemp(nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdDelayTemp([]string{"-temp", "350"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdReliability(t *testing.T) {
	if err := cmdReliability([]string{"-wires", "8", "-hot-wire", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReliability([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdFig1B(t *testing.T) {
	if testing.Short() {
		t.Skip("BEM extraction")
	}
	if err := cmdFig1B([]string{"-wires", "7", "-panels", "3", "-nodes", "130nm"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdStats(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	if err := cmdStats([]string{"-bench", "crafty", "-cycles", "50000"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdStats([]string{"-bench", "gcc"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCmdFig3Small(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	err := cmdFig3([]string{
		"-cycles", "60000", "-benchmarks", "crafty", "-nodes", "130nm", "-schemes", "BI,Unencoded",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdFig3([]string{"-nodes", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdFig4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	err := cmdFig4([]string{"-cycles", "200000", "-interval", "50000", "-benchmarks", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdFig4([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdFig5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	err := cmdFig5([]string{
		"-cycles", "1000000", "-idle-start", "500000", "-idle-length", "200000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdFig5([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdL2BusSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	if err := cmdL2Bus([]string{"-cycles", "200000", "-bench", "crafty"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdL2Bus([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdBaselinesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	if err := cmdBaselines([]string{"-cycles", "500000", "-bench", "crafty"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBaselines([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestCmdSubstrateSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven")
	}
	err := cmdSubstrate([]string{
		"-cycles", "1500000", "-period", "400000", "-bench", "crafty",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdSubstrate([]string{"-node", "bogus"}); err == nil {
		t.Error("bogus node accepted")
	}
}

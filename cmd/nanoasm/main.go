// Command nanoasm is the NB32 toolchain driver: assemble, disassemble and
// run the programs the workload package is built from — and any custom
// workload a user writes:
//
//	nanoasm build prog.s -o prog.nbx
//	nanoasm disasm prog.nbx
//	nanoasm run prog.s [-max-steps N] [-regs]
//	nanoasm bench eon            # dump a built-in benchmark's source
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobus/internal/cpu"
	"nanobus/internal/isa"
	"nanobus/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "disasm":
		err = cmdDisasm(args)
	case "run":
		err = cmdRun(args)
	case "bench":
		err = cmdBench(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nanoasm: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanoasm %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nanoasm <command> [flags]

commands:
  build   assemble NB32 source into a program binary
  disasm  disassemble a program binary
  run     assemble and execute a program, reporting instructions and state
  bench   print a built-in benchmark's assembly source`)
}

func assembleFile(path string) (*isa.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return isa.Assemble(string(src))
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "prog.nbx", "output program binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanoasm build [-o OUT] SOURCE.s")
	}
	p, err := assembleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	werr := isa.WriteProgram(f, p)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	total := 0
	for _, s := range p.Segments {
		total += len(s.Data)
	}
	fmt.Printf("%s: entry %#x, %d segments, %d bytes\n", *out, p.Entry, len(p.Segments), total)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanoasm disasm PROGRAM.nbx")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := isa.ReadProgram(f)
	if err != nil {
		return err
	}
	for i, seg := range p.Segments {
		if i > 0 {
			fmt.Println()
		}
		if err := isa.Disassemble(os.Stdout, seg); err != nil {
			return err
		}
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	maxSteps := fs.Uint64("max-steps", 10_000_000, "instruction budget")
	regs := fs.Bool("regs", false, "dump registers at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanoasm run [-max-steps N] [-regs] SOURCE.s")
	}
	p, err := assembleFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c := cpu.LoadProgram(p)
	var fetches, mems uint64
	for c.Instret < *maxSteps && !c.Halted {
		ev, err := c.Step()
		if err != nil {
			return fmt.Errorf("at pc=%#x after %d instructions: %w", ev.Fetch, c.Instret, err)
		}
		fetches++
		if ev.Mem {
			mems++
		}
	}
	status := "halted"
	if !c.Halted {
		status = "budget exhausted"
	}
	fmt.Printf("%s after %d instructions (%d memory ops, %.1f%% duty)\n",
		status, c.Instret, mems, 100*float64(mems)/float64(fetches))
	k := c.Counters
	fmt.Printf("mix: %d loads, %d stores, %d branches (%d taken), %d jumps, %d fp ops\n",
		k.Loads, k.Stores, k.Branches, k.Taken, k.Jumps, k.FPOps)
	if *regs {
		for i := 0; i < isa.NumRegs; i++ {
			fmt.Printf("  r%-2d = %#010x  f%-2d = %g\n", i, c.Regs[i], i, c.FRegs[i])
		}
		fmt.Printf("  pc  = %#010x\n", c.PC)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanoasm bench NAME (one of %v)", workload.Names())
	}
	b, ok := workload.ByName(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown benchmark %q (have %v)", fs.Arg(0), workload.Names())
	}
	fmt.Printf("# %s (%s): %s\n", b.Name, b.Class, b.Description)
	fmt.Println(b.Source)
	return nil
}

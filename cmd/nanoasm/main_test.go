package main

import (
	"os"
	"path/filepath"
	"testing"
)

const testProg = `
	.org 0x1000
start:
	addi r1, r0, 10
	addi r2, r0, 0
loop:
	add r2, r2, r1
	addi r1, r1, -1
	bne r1, r0, loop
	sw r2, 0(r3)
	halt
`

func writeTestSource(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(testProg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildDisasmRun(t *testing.T) {
	src := writeTestSource(t)
	out := filepath.Join(t.TempDir(), "prog.nbx")
	if err := cmdBuild([]string{"-o", out, src}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdDisasm([]string{out}); err != nil {
		t.Fatalf("disasm: %v", err)
	}
	if err := cmdRun([]string{"-regs", src}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBudget(t *testing.T) {
	// An infinite loop exits via the step budget, not an error.
	path := filepath.Join(t.TempDir(), "loop.s")
	if err := os.WriteFile(path, []byte("spin:\n\tj spin\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-max-steps", "1000", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestBenchSubcommand(t *testing.T) {
	if err := cmdBench([]string{"swim"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBench([]string{"gcc"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := cmdBench(nil); err == nil {
		t.Error("missing operand accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	if err := cmdBuild([]string{"/nonexistent.s"}); err == nil {
		t.Error("missing source accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(bad, []byte("bogus instruction"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-o", filepath.Join(t.TempDir(), "x.nbx"), bad}); err == nil {
		t.Error("unassemblable source accepted")
	}
}

func TestDisasmErrors(t *testing.T) {
	if err := cmdDisasm([]string{"/nonexistent.nbx"}); err == nil {
		t.Error("missing binary accepted")
	}
	notProg := filepath.Join(t.TempDir(), "junk.nbx")
	if err := os.WriteFile(notProg, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdDisasm([]string{notProg}); err == nil {
		t.Error("junk binary accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := cmdRun([]string{"/nonexistent.s"}); err == nil {
		t.Error("missing source accepted")
	}
}

// Command nanobusd serves the unified bus energy/thermal model as a
// long-running streaming HTTP service (the v1 API of internal/server).
//
//	nanobusd -addr :8080
//
// Sessions wrap reusable simulators recycled through a keyed pool; trace
// words stream in as NDJSON or binary batches; per-interval samples
// stream back. SIGINT/SIGTERM drains gracefully: new sessions are
// refused, in-flight requests finish (bounded by -drain-timeout), then
// the process exits 0.
//
//	nanobusd -addr 127.0.0.1:0 -shards 8 -max-sessions 1024 \
//	         -max-batch 65536 -request-timeout 2m -drain-timeout 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registered on the default mux, served only with -pprof
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"nanobus/internal/blob"
	"nanobus/internal/cluster"
	"nanobus/internal/server"
)

func main() {
	os.Exit(realMain())
}

// envOr reads an environment fallback for a flag default.
func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// envIntOr is envOr for integer-valued variables; malformed values fall
// back to def rather than failing startup.
func envIntOr(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// replicationPeers picks the k members cyclically following self in name
// order — the deterministic fan-out set for checkpoint replication.
func replicationPeers(nodes []cluster.Node, self string, k int) []cluster.Node {
	others := make([]cluster.Node, 0, len(nodes))
	selfIdx := -1
	sorted := append([]cluster.Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for i, n := range sorted {
		if n.Name == self {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil
	}
	for i := 1; i < len(sorted) && len(others) < k; i++ {
		others = append(others, sorted[(selfIdx+i)%len(sorted)])
	}
	return others
}

func realMain() int {
	fs := flag.NewFlagSet("nanobusd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
	nbwpAddr := fs.String("nbwp-addr", "", "NBWP binary-protocol listen address (empty = disabled)")
	shards := fs.Int("shards", 0, "session-table shards (0 = default 8)")
	maxSessions := fs.Int("max-sessions", 0, "max concurrently open sessions (0 = default 1024)")
	maxBatch := fs.Int("max-batch", 0, "max words per batch (0 = default 65536)")
	maxPool := fs.Int("max-pool", 0, "max recycled simulators kept per configuration (0 = default 32)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request timeout for step/result (0 = none)")
	acqTimeout := fs.Duration("acquire-timeout", 0, "max wait for a busy session before 409 (0 = default 1s)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for durable session checkpoints (empty = no store; checkpoint?download=1 still works)")
	ckptEvery := fs.Uint64("checkpoint-every", 0, "auto-checkpoint each session every N simulated cycles (0 = manual only; requires -checkpoint-dir)")
	clusterSelf := fs.String("cluster-self", envOr("NANOBUS_CLUSTER_SELF", ""), "this node's name in -cluster-members (empty = single-node mode)")
	clusterMembers := fs.String("cluster-members", envOr("NANOBUS_CLUSTER_MEMBERS", ""), "static membership, name=http://host:port[+nbwphost:port],... (requires -cluster-self)")
	clusterReplicas := fs.Int("cluster-replicas", envIntOr("NANOBUS_CLUSTER_REPLICAS", 2), "total checkpoint copies per session, local included (cluster mode)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *pprofAddr != "" {
		// Profiling stays off the service handler: it binds its own
		// listener (keep it loopback-only) and is disabled by default.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: pprof listen: %v\n", err)
			return 1
		}
		fmt.Printf("nanobusd: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			// net/http/pprof registers on the default mux.
			//nanolint:ignore droppederr the profiler dying must not take the service down
			_ = http.Serve(pln, nil)
		}()
	}

	var store server.BlobStore
	var local server.BlobStore
	if *ckptDir != "" {
		st, err := server.NewFSStore(*ckptDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: checkpoint store: %v\n", err)
			return 1
		}
		store, local = st, st
	} else if *ckptEvery > 0 {
		fmt.Fprintln(os.Stderr, "nanobusd: -checkpoint-every requires -checkpoint-dir")
		return 2
	}

	var clusterCfg server.ClusterConfig
	if *clusterSelf != "" || *clusterMembers != "" {
		if *clusterSelf == "" || *clusterMembers == "" {
			fmt.Fprintln(os.Stderr, "nanobusd: -cluster-self and -cluster-members must be set together")
			return 2
		}
		nodes, err := cluster.ParseMembers(*clusterMembers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: -cluster-members: %v\n", err)
			return 2
		}
		self, ok := cluster.FindNode(nodes, *clusterSelf)
		if !ok {
			fmt.Fprintf(os.Stderr, "nanobusd: -cluster-self %q is not in -cluster-members\n", *clusterSelf)
			return 2
		}
		if local == nil {
			fmt.Fprintln(os.Stderr, "nanobusd: cluster mode requires -checkpoint-dir (checkpoints are the migration and failover medium)")
			return 2
		}
		clusterCfg = server.ClusterConfig{Self: self.Name, Nodes: nodes, Replicas: *clusterReplicas}
		// Checkpoints replicate to the replicas-1 members that follow this
		// node in name order (a cyclic, deterministic choice every member
		// agrees on), so any single node death leaves a surviving copy.
		var peers []blob.Store
		for _, n := range replicationPeers(nodes, self.Name, *clusterReplicas-1) {
			peers = append(peers, blob.NewHTTPStore(n.HTTP, nil))
		}
		store = blob.NewReplicated(local, peers, blob.WithValidator(server.ValidateEnvelope))
	}

	srv := server.New(server.Config{
		Shards:               *shards,
		MaxSessions:          *maxSessions,
		MaxBatchWords:        *maxBatch,
		MaxPoolPerKey:        *maxPool,
		RequestTimeout:       *reqTimeout,
		AcquireTimeout:       *acqTimeout,
		Store:                store,
		PeerStore:            local,
		Cluster:              clusterCfg,
		AutoCheckpointCycles: *ckptEvery,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanobusd: listen: %v\n", err)
		return 1
	}
	// The smoke harness and operators parse this line for the bound port.
	// The NBWP banner, when enabled, must come after it.
	fmt.Printf("nanobusd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	if *nbwpAddr != "" {
		nln, err := net.Listen("tcp", *nbwpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: nbwp listen: %v\n", err)
			return 1
		}
		fmt.Printf("nanobusd: nbwp on %s\n", nln.Addr())
		go func() {
			if err := srv.ServeNBWP(nln); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "nanobusd: nbwp serve: %v\n", err)
			}
		}()
	}

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "nanobusd: serve: %v\n", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	fmt.Printf("nanobusd: signal received, draining (%d sessions active)\n", srv.SessionsActive())
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.ShutdownNBWP(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "nanobusd: nbwp drain timed out: %v\n", err)
		// Fall through: HTTP shutdown still gets its chance within the
		// same deadline, and we report the partial drain via exit code.
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: drain timed out: %v\n", err)
		}
		return 1
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "nanobusd: drain timed out: %v\n", err)
		if err := hs.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nanobusd: close: %v\n", err)
		}
		return 1
	}
	fmt.Println("nanobusd: drained cleanly")
	return 0
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenInfoDumpRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "t.nbt")
	if err := cmdGen([]string{"-bench", "crafty", "-cycles", "20000", "-skip", "600000", "-o", out}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	fi, err := os.Stat(out)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v, size %d", err, fi.Size())
	}
	if err := cmdInfo([]string{out}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdDump([]string{"-n", "5", out}); err != nil {
		t.Fatalf("dump: %v", err)
	}
}

func TestGenSynth(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "s.nbt")
	if err := cmdGen([]string{"-bench", "synth", "-cycles", "5000", "-o", out}); err != nil {
		t.Fatalf("gen synth: %v", err)
	}
	if err := cmdInfo([]string{out}); err != nil {
		t.Fatalf("info: %v", err)
	}
}

func TestGenUnknownBenchmark(t *testing.T) {
	if err := cmdGen([]string{"-bench", "gcc", "-o", filepath.Join(t.TempDir(), "x.nbt")}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestInfoErrors(t *testing.T) {
	if err := cmdInfo(nil); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdInfo([]string{"/nonexistent/file.nbt"}); err == nil {
		t.Error("nonexistent file accepted")
	}
	// A non-trace file is rejected by the magic check.
	bad := filepath.Join(t.TempDir(), "bad.nbt")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{bad}); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDumpErrors(t *testing.T) {
	if err := cmdDump([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdDump([]string{"/nonexistent/file.nbt"}); err == nil {
		t.Error("nonexistent file accepted")
	}
}

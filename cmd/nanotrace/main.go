// Command nanotrace generates, inspects, and summarises address traces in
// the nanotrace binary format:
//
//	nanotrace gen  -bench swim -cycles 1000000 -o swim.nbt
//	nanotrace info swim.nbt
//	nanotrace dump -n 20 swim.nbt
package main

import (
	"flag"
	"fmt"
	"os"

	"nanobus/internal/trace"
	"nanobus/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "info":
		err = cmdInfo(args)
	case "dump":
		err = cmdDump(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nanotrace: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nanotrace %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: nanotrace <command> [flags]

commands:
  gen   run a benchmark (or the synthetic generator) and write a trace file
  info  print stream statistics of a trace file
  dump  print the first cycles of a trace file`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "eon", "benchmark name, or 'synth' for the statistical generator")
	cycles := fs.Uint64("cycles", 1_000_000, "cycles to record after warm-up")
	skip := fs.Uint64("skip", 0, "warm-up cycles to skip (0 = benchmark default)")
	seed := fs.Int64("seed", 1, "seed for -bench synth")
	out := fs.String("o", "trace.nbt", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src trace.Source
	if *bench == "synth" {
		src = trace.NewSynth(trace.DefaultSynthConfig(*seed))
		if *skip > 0 {
			src = trace.Skip(src, *skip)
		}
	} else {
		b, ok := workload.ByName(*bench)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		warm := b.WarmupCycles
		if *skip > 0 {
			warm = *skip
		}
		warmed, err := b.NewWarmSource(warm)
		if err != nil {
			return err
		}
		src = warmed
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	for i := uint64(0); i < *cycles; i++ {
		c, ok := src.Next()
		if !ok {
			return fmt.Errorf("source ended after %d cycles", i)
		}
		if err := w.Write(c); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d cycles to %s\n", w.Cycles(), *out)
	return f.Close()
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close() //nanolint:ignore droppederr the read error is returned; a close failure on this abandoned handle adds nothing
		return nil, nil, err
	}
	return r, f, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanotrace info FILE")
	}
	r, f, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	ia, da, cycles := trace.CollectStats(r, ^uint64(0))
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d cycles\n", fs.Arg(0), cycles)
	fmt.Printf("  IA: duty %.3f, mean Hamming %.2f, frac>16 %.5f\n",
		ia.DutyFactor(), ia.MeanHamming(), ia.FracAboveHalf())
	fmt.Printf("  DA: duty %.3f, mean Hamming %.2f, frac>16 %.5f\n",
		da.DutyFactor(), da.MeanHamming(), da.FracAboveHalf())
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	n := fs.Int("n", 20, "cycles to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nanotrace dump [-n N] FILE")
	}
	r, f, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < *n; i++ {
		c, ok := r.Next()
		if !ok {
			break
		}
		line := fmt.Sprintf("%6d  IA=%#010x", i, c.IAddr)
		if !c.IValid {
			line = fmt.Sprintf("%6d  IA=(idle)    ", i)
		}
		if c.DValid {
			op := "ld"
			if c.DStore {
				op = "st"
			}
			line += fmt.Sprintf("  DA=%#010x (%s)", c.DAddr, op)
		}
		fmt.Println(line)
	}
	return r.Err()
}

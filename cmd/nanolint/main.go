// Command nanolint runs the physics-aware static-analysis rules of
// internal/analysis over packages of this module:
//
//	go run ./cmd/nanolint ./...
//	go run ./cmd/nanolint -rules magicconst,floateq ./internal/thermal
//
// Patterns follow the go tool: "dir/..." walks recursively (skipping
// testdata), a plain pattern names one package directory. Findings print as
// "file:line:col: [rule] message"; the process exits 1 if any unsuppressed
// finding remains, 2 on usage or load errors.
//
// A finding is suppressed by the directive
//
//	//nanolint:ignore <rule> <reason>
//
// at the end of the offending line or on its own line directly above it.
// The reason is mandatory; directives without one are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nanobus/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nanolint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all rules)")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed findings with their justification")
	list := fs.Bool("list", false, "list the available rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nanolint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, az := range analysis.All() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	azs := analysis.All()
	if *rules != "" {
		var err error
		azs, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	findings, err := analysis.Run(pkgs, azs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	bad := 0
	for _, f := range findings {
		if f.Suppressed {
			if *showSuppressed {
				fmt.Fprintf(os.Stdout, "%s (suppressed: %s)\n", finding(root, f), f.SuppressReason)
			}
			continue
		}
		bad++
		fmt.Fprintln(os.Stdout, finding(root, f))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stdout, "nanolint: %d finding(s) in %d package(s)\n", bad, len(pkgs))
		return 1
	}
	return 0
}

// finding renders one finding with a module-relative path.
func finding(root string, f analysis.Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Command nanolint runs the physics-aware static-analysis rules of
// internal/analysis over packages of this module:
//
//	go run ./cmd/nanolint ./...
//	go run ./cmd/nanolint -rules magicconst,floateq ./internal/thermal
//	go run ./cmd/nanolint -baseline .nanolint-baseline.json -ratchet -sarif out.sarif ./...
//
// Patterns follow the go tool: "dir/..." walks recursively (skipping
// testdata), a plain pattern names one package directory. Packages are
// analyzed in parallel with deterministic output order. Findings print as
// "file:line:col: [rule] message"; the process exits 1 if any fresh
// unsuppressed finding remains (or, under -ratchet, if the baseline has
// gone slack), 2 on usage or load errors.
//
// Nine rules ship: magicconst, droppederr, floateq, libpanic (AST/call-graph
// hygiene) and hotalloc, maporder, wallclock, unsafeaudit, ctxpoll
// (dataflow-aware determinism and hot-path invariants). Run -list for the
// one-line summaries.
//
// A finding is suppressed by the directive
//
//	//nanolint:ignore <rule>[,<rule>...] <reason>
//
// at the end of the offending line or on its own line directly above it.
// The reason is mandatory; directives without one are themselves findings,
// as are directives that no longer suppress anything (unused-suppression).
//
// CI integration:
//
//	-sarif FILE       write a SARIF 2.1.0 log for code-scanning upload
//	-baseline FILE    tolerate findings recorded in the baseline (absent
//	                  file = empty baseline)
//	-write-baseline   regenerate the baseline from this run and exit 0
//	-ratchet          additionally fail when the baseline allows more than
//	                  the run found, forcing the recorded debt to shrink
//	                  with every fix (the ratchet never loosens)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nanobus/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nanolint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all rules)")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed findings with their justification")
	list := fs.Bool("list", false, "list the available rules and exit")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log to this file")
	baselinePath := fs.String("baseline", "", "tolerate findings recorded in this baseline file")
	writeBaseline := fs.Bool("write-baseline", false, "regenerate the -baseline file from this run and exit")
	ratchet := fs.Bool("ratchet", false, "fail when the baseline allows more findings than the run produced")
	workers := fs.Int("workers", 0, "package-analysis parallelism (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nanolint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, az := range analysis.All() {
			fmt.Fprintf(os.Stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	if (*writeBaseline || *ratchet) && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "nanolint: -write-baseline and -ratchet require -baseline FILE")
		return 2
	}

	azs := analysis.All()
	if *rules != "" {
		var err error
		azs, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs := make([]*analysis.Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	findings, err := analysis.RunParallel(pkgs, azs, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		werr := analysis.WriteSARIF(f, findings, azs, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "nanolint: writing %s: %v\n", *sarifPath, werr)
			return 2
		}
	}

	if *writeBaseline {
		b := analysis.NewBaseline(findings, root)
		if err := b.Save(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stdout, "nanolint: wrote baseline %s (%d tolerated finding(s))\n",
			*baselinePath, len(analysis.Unsuppressed(findings)))
		return 0
	}

	fresh := findings
	var slack []string
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fresh = b.Apply(findings, root)
		if *ratchet {
			slack = b.Slack(findings, root)
		}
	} else {
		fresh = analysis.Unsuppressed(findings)
	}

	if *showSuppressed {
		for _, f := range findings {
			if f.Suppressed {
				fmt.Fprintf(os.Stdout, "%s (suppressed: %s)\n", finding(root, f), f.SuppressReason)
			}
		}
	}
	for _, f := range fresh {
		fmt.Fprintln(os.Stdout, finding(root, f))
	}
	for _, s := range slack {
		fmt.Fprintf(os.Stdout, "nanolint: ratchet slack: %s (tighten with -write-baseline)\n", s)
	}
	if len(fresh) > 0 || len(slack) > 0 {
		fmt.Fprintf(os.Stdout, "nanolint: %d finding(s) in %d package(s)\n", len(fresh), len(pkgs))
		return 1
	}
	return 0
}

// finding renders one finding with a module-relative path.
func finding(root string, f analysis.Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d: [%s] %s", name, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

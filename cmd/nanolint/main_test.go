package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		// Patterns resolve relative to the module root (see
		// Loader.ExpandPatterns), so these work no matter where the test
		// binary's working directory sits inside the module.
		{"fixture findings", []string{"internal/analysis/testdata/src/droppederr"}, 1},
		{"fixture magicconst", []string{"-rules", "magicconst", "internal/analysis/testdata/src/energy"}, 1},
		{"fixture ctxpoll", []string{"-rules", "ctxpoll", "internal/analysis/testdata/src/core"}, 1},
		{"fixture unsafeaudit", []string{"-rules", "unsafeaudit", "internal/analysis/testdata/src/unsafeaudit"}, 1},
		{"clean package", []string{"internal/units"}, 0},
		{"list rules", []string{"-list"}, 0},
		{"unknown rule", []string{"-rules", "nosuchrule", "internal/units"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"ratchet without baseline", []string{"-ratchet", "internal/units"}, 2},
		{"write-baseline without baseline", []string{"-write-baseline", "internal/units"}, 2},
		{"no go files", []string{"internal/analysis/testdata"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

// TestSarifOutput runs the driver with -sarif on a fixture with known
// findings and checks a parseable 2.1.0 document lands on disk even when
// the run exits nonzero.
func TestSarifOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.sarif")
	fixture := "internal/analysis/testdata/src/droppederr"
	if got := run([]string{"-sarif", path, fixture}); got != 1 {
		t.Fatalf("run = %d, want 1", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("SARIF file not written: %v", err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q", doc.Version)
	}
	if len(doc.Runs) != 1 || len(doc.Runs[0].Results) == 0 {
		t.Errorf("SARIF has no results for a fixture with findings")
	}
}

// TestBaselineRatchetFlow walks the adoption workflow end to end:
// -write-baseline records the debt and exits 0; a -baseline run tolerates
// exactly that debt; -ratchet passes at the recorded counts and fails —
// the ratchet never loosens — once the baseline allows more than the run
// finds.
func TestBaselineRatchetFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.json")
	fixture := "internal/analysis/testdata/src/droppederr"

	if got := run([]string{"-baseline", base, "-write-baseline", fixture}); got != 0 {
		t.Fatalf("write-baseline = %d, want 0", got)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if got := run([]string{"-baseline", base, fixture}); got != 0 {
		t.Errorf("run with matching baseline = %d, want 0 (debt tolerated)", got)
	}
	if got := run([]string{"-baseline", base, "-ratchet", fixture}); got != 0 {
		t.Errorf("ratchet at exact counts = %d, want 0", got)
	}
	// A clean package against the debt-carrying baseline: every entry is
	// slack, so the ratchet fails until the baseline is tightened.
	if got := run([]string{"-baseline", base, "-ratchet", "internal/units"}); got != 1 {
		t.Errorf("ratchet with slack = %d, want 1", got)
	}
	// Without -ratchet the same slack passes (plain tolerance mode).
	if got := run([]string{"-baseline", base, "internal/units"}); got != 0 {
		t.Errorf("tolerance run on clean package = %d, want 0", got)
	}
}

package main

import "testing"

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		// Patterns resolve relative to the module root (see
		// Loader.ExpandPatterns), so these work no matter where the test
		// binary's working directory sits inside the module.
		{"fixture findings", []string{"internal/analysis/testdata/src/droppederr"}, 1},
		{"fixture magicconst", []string{"-rules", "magicconst", "internal/analysis/testdata/src/energy"}, 1},
		{"clean package", []string{"internal/units"}, 0},
		{"list rules", []string{"-list"}, 0},
		{"unknown rule", []string{"-rules", "nosuchrule", "internal/units"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("run(%v) = %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}

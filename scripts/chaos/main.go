// Command chaos is the durability gate for nanobusd: it proves that a
// kill -9 mid-stream loses no accounting. It execs a built nanobusd with
// a filesystem checkpoint store and periodic auto-checkpoints, streams
// sequenced batches at it, SIGKILLs the daemon, restarts a second one on
// the same checkpoint directory — this time with an ingest failpoint
// armed through NANOBUS_FAILPOINTS — resurrects the session, replays
// every batch past the last checkpoint, and requires the final energy
// and thermal figures to be bit-for-bit identical to an uninterrupted
// in-process library run of the same schedule. The scenario runs twice:
// once over the HTTP surface and once over the NBWP binary protocol,
// where the kill lands mid-pipeline with unacknowledged STEP frames in
// flight and recovery goes through a RESTORE frame on a fresh
// connection. The whole recovery path — resurrect, duplicate absorption,
// replay through an injected fault, final comparison — is written once
// against the transport-agnostic client.Transport/client.Session
// interface and shared by both legs.
//
//	go build -o /tmp/nanobusd ./cmd/nanobusd
//	go run ./scripts/chaos -bin /tmp/nanobusd
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"nanobus"
	"nanobus/client"
)

const (
	nodeName   = "90nm"
	scheme     = "BI"
	interval   = 100
	batchWords = 150
	nBatches   = 12
	ckptEvery  = "300"
)

func main() {
	bin := flag.String("bin", "", "path to the built nanobusd binary")
	timeout := flag.Duration("timeout", 120*time.Second, "overall chaos deadline")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "chaos: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("chaos: PASS")
}

// batch regenerates the word batch for a sequence number from the number
// alone. This is the resume contract: a client that can rebuild batch N
// on demand can replay everything past the last checkpoint, so an ack
// lost to a kill -9 costs retransmission, never correctness.
func batch(seq uint64) []uint32 {
	words := make([]uint32, batchWords)
	x := uint32(seq)*2654435761 + 1
	for i := range words {
		x = x*1664525 + 1013904223
		words[i] = x
	}
	return words
}

// reference runs the full schedule through the in-process library.
func reference(ctx context.Context) (*nanobus.Bus, error) {
	node, err := nanobus.ResolveNode(nodeName)
	if err != nil {
		return nil, err
	}
	bus, err := nanobus.New(node, nanobus.WithEncoding(scheme), nanobus.WithInterval(interval))
	if err != nil {
		return nil, err
	}
	for seq := uint64(1); seq <= nBatches; seq++ {
		if _, err := bus.StepBatch(ctx, batch(seq)); err != nil {
			return nil, err
		}
	}
	if err := bus.Finish(); err != nil {
		return nil, err
	}
	return bus, nil
}

// daemon is one exec'd nanobusd instance.
type daemon struct {
	cmd      *exec.Cmd
	addr     string
	nbwpAddr string
	rest     chan string
}

// startDaemon execs bin with the shared checkpoint directory (NBWP
// enabled) and waits for its listening lines. extraEnv entries are
// appended to the process environment (the failpoint arming channel).
func startDaemon(bin, ckptDir string, extraEnv []string) (*daemon, error) {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-nbwp-addr", "127.0.0.1:0",
		"-checkpoint-dir", ckptDir, "-checkpoint-every", ckptEvery)
	cmd.Env = append(os.Environ(), extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	sc := bufio.NewScanner(stdout)
	kill := func() {
		_ = cmd.Process.Kill() //nanolint:ignore droppederr best-effort cleanup of a daemon that misbehaved at startup
		_ = cmd.Wait()         //nanolint:ignore droppederr best-effort cleanup of a daemon that misbehaved at startup
	}
	banner := func(prefix string) (string, error) {
		if !sc.Scan() {
			kill()
			return "", fmt.Errorf("nanobusd stdout ended before %q: %v", prefix, sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			kill()
			return "", fmt.Errorf("unexpected line %q (want %q prefix)", line, prefix)
		}
		return strings.TrimPrefix(line, prefix), nil
	}
	addr, err := banner("nanobusd: listening on ")
	if err != nil {
		return nil, err
	}
	nbwpAddr, err := banner("nanobusd: nbwp on ")
	if err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd, addr: addr, nbwpAddr: nbwpAddr, rest: make(chan string, 1)}
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		d.rest <- strings.Join(lines, "\n")
	}()
	return d, nil
}

func (d *daemon) url() string { return "http://" + d.addr }

// kill simulates a crash: SIGKILL, no drain, no goodbye.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill() //nanolint:ignore droppederr SIGKILL on a live child cannot meaningfully fail
	_ = d.cmd.Wait()         //nanolint:ignore droppederr the child was SIGKILLed; a non-zero exit is the point
}

// drain SIGTERMs the daemon and requires a clean exit. The stdout tail
// must be collected to EOF BEFORE cmd.Wait(): Wait closes the pipe the
// moment the process exits, which can cut off the reader goroutine
// before it has consumed the buffered "drained cleanly" line.
func (d *daemon) drain(ctx context.Context) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	var tail string
	select {
	case tail = <-d.rest:
		// Pipe EOF: the daemon has closed stdout, i.e. it has exited.
	case <-ctx.Done():
		return fmt.Errorf("nanobusd did not exit after SIGTERM: %w", ctx.Err())
	}
	if err := d.cmd.Wait(); err != nil {
		return fmt.Errorf("nanobusd exited uncleanly after SIGTERM: %w", err)
	}
	if !strings.Contains(tail, "drained cleanly") {
		return fmt.Errorf("missing drain message in output:\n%s", tail)
	}
	return nil
}

// replay sends batches from..nBatches through the transport-agnostic
// Session interface, recovering from any mid-stream failure (injected
// ingest faults, seq conflicts) by restoring the last checkpoint and
// resuming from its acknowledged sequence number. It returns how many
// recoveries were needed.
func replay(ctx context.Context, sess client.Session, from uint64) (int, error) {
	recoveries := 0
	for seq := from; seq <= nBatches; {
		sum, err := sess.StepBinarySeq(ctx, seq, batch(seq))
		if err == nil {
			if sum.Duplicate {
				fmt.Printf("chaos: seq %d absorbed as duplicate\n", seq)
			}
			seq++
			continue
		}
		if recoveries++; recoveries > 5 {
			return recoveries, fmt.Errorf("giving up after %d recoveries; last: %w", recoveries-1, err)
		}
		fmt.Printf("chaos: seq %d failed (%v); restoring\n", seq, err)
		res, rerr := sess.Restore(ctx)
		if rerr != nil {
			return recoveries, fmt.Errorf("restore after failed seq %d: %w", seq, rerr)
		}
		fmt.Printf("chaos: rewound to seq %d (cycle %d)\n", res.Seq, res.Cycles)
		seq = res.Seq + 1
	}
	return recoveries, nil
}

// resume is the shared recovery half of both legs: resurrect id from the
// checkpoint store through tr, require a rewind to a checkpointed
// frontier, absorb a duplicate of that frontier, replay the tail through
// the armed ingest failpoint, and require the final figures to match the
// uninterrupted library run bit for bit. It returns the live handle so
// the caller can close it over its own transport.
func resume(ctx context.Context, tr client.Transport, ref *nanobus.Bus, id, label string) (client.Session, error) {
	sess, res, err := tr.Resurrect(ctx, id, nil)
	if err != nil {
		return nil, fmt.Errorf("resurrect: %w", err)
	}
	if !res.Resurrected {
		return nil, fmt.Errorf("restore did not resurrect: %+v", res)
	}
	fmt.Printf("chaos: %s: resurrected %s at seq %d (cycle %d)\n", label, id, res.Seq, res.Cycles)
	if res.Seq >= 7 {
		return nil, fmt.Errorf("checkpoint claims seq %d, but only 6 could have been checkpointed", res.Seq)
	}
	// A duplicate of the last checkpointed batch must be absorbed, not
	// double-counted.
	dup, err := sess.StepBinarySeq(ctx, res.Seq, batch(res.Seq))
	if err != nil || !dup.Duplicate {
		return nil, fmt.Errorf("duplicate of seq %d: sum=%+v err=%v", res.Seq, dup, err)
	}
	recoveries, err := replay(ctx, sess, res.Seq+1)
	if err != nil {
		return nil, err
	}
	if recoveries == 0 {
		return nil, fmt.Errorf("ingest failpoint never fired: the %s leg did not exercise the recovery path", label)
	}
	final, err := sess.Result(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	if err := compareFinal(ref, final); err != nil {
		return nil, err
	}
	fmt.Printf("chaos: %s: %d batches survived kill -9 + injected ingest fault; %d samples bit-identical (total %.4g J)\n",
		label, nBatches, len(final.Samples), final.Total.TotalJ)
	return sess, nil
}

func run(ctx context.Context, bin string) error {
	ref, err := reference(ctx)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	if err := httpLeg(ctx, bin, ref); err != nil {
		return fmt.Errorf("http leg: %w", err)
	}
	if err := nbwpLeg(ctx, bin, ref); err != nil {
		return fmt.Errorf("nbwp leg: %w", err)
	}
	return nil
}

// httpLeg is the original chaos scenario over the HTTP surface.
func httpLeg(ctx context.Context, bin string, ref *nanobus.Bus) error {
	ckptDir, err := os.MkdirTemp("", "nanobus-chaos-*")
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr best-effort temp-dir cleanup on exit
		_ = os.RemoveAll(ckptDir)
	}()

	// Daemon #1: stream seq 1..7 (auto-checkpoints land every 2 batches
	// at 150 words each), then die without warning. Seq 7 is past the
	// last checkpoint: its ack will be lost and the batch replayed.
	d1, err := startDaemon(bin, ckptDir, nil)
	if err != nil {
		return err
	}
	retry := client.WithRetry(client.RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond})
	c1 := client.New(d1.url(), retry)
	if err := c1.Healthz(ctx); err != nil {
		d1.kill()
		return fmt.Errorf("healthz: %w", err)
	}
	sess1, err := c1.OpenSession(ctx, client.SessionConfig{
		Node: nodeName, Encoding: scheme, IntervalCycles: interval,
	})
	if err != nil {
		d1.kill()
		return fmt.Errorf("create session: %w", err)
	}
	for seq := uint64(1); seq <= 7; seq++ {
		if _, err := sess1.StepBinarySeq(ctx, seq, batch(seq)); err != nil {
			d1.kill()
			return fmt.Errorf("seq %d on daemon 1: %w", seq, err)
		}
	}
	id := sess1.ID()
	fmt.Printf("chaos: killing nanobusd (pid %d) with 7/%d batches acknowledged\n",
		d1.cmd.Process.Pid, nBatches)
	d1.kill()

	// Daemon #2 shares only the checkpoint directory — and runs with an
	// ingest failpoint armed, so one of the replayed batches dies
	// mid-request and the client must restore a second time.
	d2, err := startDaemon(bin, ckptDir, []string{
		"NANOBUS_FAILPOINTS=server.ingest.decode=error,nth=3",
	})
	if err != nil {
		return err
	}
	defer func() {
		if d2.cmd.ProcessState == nil {
			d2.kill()
		}
	}()
	sess2, err := resume(ctx, client.New(d2.url(), retry), ref, id, "http")
	if err != nil {
		return err
	}
	if err := sess2.Close(ctx); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return d2.drain(ctx)
}

// compareFinal requires every service figure to match the uninterrupted
// library run bit for bit.
func compareFinal(ref *nanobus.Bus, final *client.Result) error {
	tot := ref.TotalEnergy()
	maxT, _ := ref.Network().MaxTemp()
	checks := []struct {
		name     string
		svc, lib float64
	}{
		{"total energy", final.Total.TotalJ, tot.Total()},
		{"self energy", final.Total.SelfJ, tot.Self},
		{"adjacent coupling", final.Total.CoupAdjJ, tot.CoupAdj},
		{"non-adjacent coupling", final.Total.CoupNonAdjJ, tot.CoupNonAdj},
		{"avg temp", final.AvgTempK, ref.Network().AvgTemp()},
		{"max temp", final.MaxTempK, maxT},
	}
	for _, ck := range checks {
		if math.Float64bits(ck.svc) != math.Float64bits(ck.lib) {
			return fmt.Errorf("%s differs after chaos: service %.17g, library %.17g",
				ck.name, ck.svc, ck.lib)
		}
	}
	if final.Cycles != ref.Cycles() {
		return fmt.Errorf("cycles differ: service %d, library %d", final.Cycles, ref.Cycles())
	}
	libSamples := ref.Samples()
	if len(final.Samples) != len(libSamples) {
		return fmt.Errorf("sample count differs: service %d, library %d",
			len(final.Samples), len(libSamples))
	}
	for i, ls := range libSamples {
		ss := final.Samples[i]
		if ss.EndCycle != ls.EndCycle ||
			math.Float64bits(ss.EnergyJ) != math.Float64bits(ls.Energy) ||
			math.Float64bits(ss.MaxTempK) != math.Float64bits(ls.MaxTemp) {
			return fmt.Errorf("sample %d differs: service %+v, library %+v", i, ss, ls)
		}
	}
	return nil
}

// nbwpLeg reruns the crash scenario over the binary protocol: a window
// of pipelined sequenced STEP frames is in flight when the daemon is
// SIGKILLed, so the tail acks are lost with the connection. A second
// daemon (ingest failpoint armed) resurrects the session from the
// checkpoint store via a RESTORE frame on a fresh connection, absorbs a
// duplicate of the checkpointed frontier, replays the rest through the
// injected fault, and must land on the same bits as the uninterrupted
// library run.
func nbwpLeg(ctx context.Context, bin string, ref *nanobus.Bus) error {
	ckptDir, err := os.MkdirTemp("", "nanobus-chaos-nbwp-*")
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr best-effort temp-dir cleanup on exit
		_ = os.RemoveAll(ckptDir)
	}()

	d1, err := startDaemon(bin, ckptDir, nil)
	if err != nil {
		return err
	}
	nc1, err := client.DialNBWP(ctx, d1.nbwpAddr)
	if err != nil {
		d1.kill()
		return fmt.Errorf("dial: %w", err)
	}
	opened, err := nc1.OpenSession(ctx, client.SessionConfig{
		Node: nodeName, Encoding: scheme, IntervalCycles: interval,
	})
	if err != nil {
		d1.kill()
		return fmt.Errorf("open: %w", err)
	}
	// Pipelining is the optional transport capability, reached through
	// the capability assertion rather than the concrete type.
	sess1, ok := opened.(client.PipelinedSession)
	if !ok {
		d1.kill()
		return fmt.Errorf("nbwp session does not pipeline (%T)", opened)
	}
	id := sess1.ID()
	// Pipeline seq 1..7 without waiting, then settle only the first
	// five acks before the kill: the tail of the pipeline is in flight
	// when the process dies, exactly the window a crash would eat.
	pend := make([]*client.StepPending, 0, 7)
	for seq := uint64(1); seq <= 7; seq++ {
		sp, serr := sess1.SendStepSeq(seq, batch(seq))
		if serr != nil {
			d1.kill()
			return fmt.Errorf("send seq %d: %w", seq, serr)
		}
		pend = append(pend, sp)
	}
	for i := 0; i < 5; i++ {
		if _, werr := pend[i].Wait(ctx); werr != nil {
			d1.kill()
			return fmt.Errorf("ack seq %d: %w", i+1, werr)
		}
	}
	fmt.Printf("chaos: nbwp: killing nanobusd (pid %d) with 5/7 pipelined batches acked\n",
		d1.cmd.Process.Pid)
	d1.kill()
	for _, sp := range pend[5:] {
		//nanolint:ignore droppederr the lost tail acks are the scenario; only the FIFO must drain
		_, _ = sp.Wait(ctx)
	}
	//nanolint:ignore droppederr the connection died with the daemon
	_ = nc1.Close()

	d2, err := startDaemon(bin, ckptDir, []string{
		"NANOBUS_FAILPOINTS=server.ingest.decode=error,nth=3",
	})
	if err != nil {
		return err
	}
	defer func() {
		if d2.cmd.ProcessState == nil {
			d2.kill()
		}
	}()
	nc2, err := client.DialNBWP(ctx, d2.nbwpAddr)
	if err != nil {
		return fmt.Errorf("redial: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort close; the leg already reported its outcome
		_ = nc2.Close()
	}()
	sess2, err := resume(ctx, nc2, ref, id, "nbwp")
	if err != nil {
		return err
	}
	if err := sess2.Close(ctx); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if err := nc2.Goodbye(ctx); err != nil {
		return fmt.Errorf("goodbye: %w", err)
	}
	return d2.drain(ctx)
}

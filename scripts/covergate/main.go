// Command covergate enforces a ratcheted minimum on total statement
// coverage. It parses a go test -coverprofile file directly (any mode:
// set, count, or atomic), computes covered/total statements, and exits
// non-zero when the percentage is below -min — the CI coverage job's
// failure condition. Packages matching -exclude (default: script mains,
// examples, and the nanobusd main, which only run exec'd as
// subprocesses under the smoke/chaos gates) are left out of the
// denominator so they cannot dilute the ratchet.
//
//	go test -coverprofile=coverage.out ./...
//	go run ./scripts/covergate -profile coverage.out -min 85.0
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "coverage.out", "go test -coverprofile output to check")
	minPct := flag.Float64("min", 0, "fail when total statement coverage is below this percentage")
	exclude := flag.String("exclude", "/scripts/,/examples/,cmd/nanobusd", "substring of file paths excluded from the total (comma-separated)")
	perPkg := flag.Bool("v", false, "also print per-package coverage")
	flag.Parse()
	if err := run(*profile, *minPct, *exclude, *perPkg); err != nil {
		fmt.Fprintf(os.Stderr, "covergate: FAIL: %v\n", err)
		os.Exit(1)
	}
}

type tally struct{ covered, total int64 }

func run(profile string, minPct float64, exclude string, perPkg bool) error {
	f, err := os.Open(profile)
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr the profile was only read; nothing to recover from a close failure
		_ = f.Close()
	}()

	var excludes []string
	for _, e := range strings.Split(exclude, ",") {
		if e = strings.TrimSpace(e); e != "" {
			excludes = append(excludes, e)
		}
	}
	skip := func(path string) bool {
		for _, e := range excludes {
			if strings.Contains(path, e) {
				return true
			}
		}
		return false
	}

	// Profile lines: file.go:startL.startC,endL.endC numStmts hitCount
	pkgs := map[string]*tally{}
	var all tally
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("%s:%d: malformed profile line %q", profile, lineNo, line)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return fmt.Errorf("%s:%d: malformed position %q", profile, lineNo, fields[0])
		}
		if skip(file) {
			continue
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("%s:%d: statement count: %w", profile, lineNo, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("%s:%d: hit count: %w", profile, lineNo, err)
		}
		pkg := file
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			pkg = file[:i]
		}
		t := pkgs[pkg]
		if t == nil {
			t = &tally{}
			pkgs[pkg] = t
		}
		t.total += stmts
		all.total += stmts
		if hits > 0 {
			t.covered += stmts
			all.covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if all.total == 0 {
		return fmt.Errorf("no statements in %s (empty or fully excluded profile)", profile)
	}

	if perPkg {
		names := make([]string, 0, len(pkgs))
		for name := range pkgs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := pkgs[name]
			fmt.Printf("covergate: %6.1f%%  %s\n", 100*float64(t.covered)/float64(t.total), name)
		}
	}
	pct := 100 * float64(all.covered) / float64(all.total)
	fmt.Printf("covergate: total statement coverage %.1f%% (%d/%d statements), minimum %.1f%%\n",
		pct, all.covered, all.total, minPct)
	if pct < minPct {
		return fmt.Errorf("coverage %.1f%% is below the ratcheted minimum %.1f%%", pct, minPct)
	}
	return nil
}

#!/bin/sh
# Hot-path benchmark runner: runs the perf-critical benches with -benchmem
# at GOMAXPROCS 1, 2 and 4 and records the parsed results (tagged with the
# GOMAXPROCS they ran under) in BENCH_hotpath.json at the repo root.
# Usage: scripts/bench.sh [extra go-test args, e.g. -benchtime 2s]
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_hotpath.json
PATTERN='BenchmarkTransition|BenchmarkThermalAdvance|BenchmarkRunPair|BenchmarkStepBatch|BenchmarkMultiStep|BenchmarkSweepWorkers|BenchmarkBinaryIngest|BenchmarkStreamSampleEncode|BenchmarkCoolingStep'
RAW=$(mktemp)
ENTRIES=$(mktemp)
trap 'rm -f "$RAW" "$ENTRIES"' EXIT

: > "$ENTRIES"
CPU=""
for G in 1 2 4; do
    GOMAXPROCS=$G go test -run NONE -bench "$PATTERN" -benchmem "$@" \
        . ./internal/server | tee "$RAW"

    # Parse `go test -bench` lines into JSON entries:
    #   BenchmarkX/sub-N   iters   T ns/op [extra metrics...]  B B/op  A allocs/op
    awk '
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        iters = $2
        ns = ""; bpo = ""; apo = ""; extras = ""
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op")     ns  = $i
            if ($(i+1) == "B/op")      bpo = $i
            if ($(i+1) == "allocs/op") apo = $i
            # custom b.ReportMetric units (e.g. hit_pct, MB/s)
            if ($(i+1) ~ /^[a-zA-Z_\/]+$/ && $(i+1) !~ /^(ns|B|allocs)\/op$/) {
            if (extras != "") extras = extras ", "
            u = $(i+1); gsub(/\//, "_per_", u)
            extras = sprintf("%s\"%s\": %s", extras, u, $i)
            }
        }
        printf "    {\"name\": \"%s\", \"gomaxprocs\": %s, \"iterations\": %s, \"ns_per_op\": %s", name, g, iters, ns
        if (bpo != "") printf ", \"bytes_per_op\": %s", bpo
        if (apo != "") printf ", \"allocs_per_op\": %s", apo
        if (extras != "") printf ", %s", extras
        printf "},\n"
    }' g="$G" "$RAW" >> "$ENTRIES"

    if [ -z "$CPU" ]; then
        CPU=$(awk '/^cpu:/ { s = substr($0, 6); gsub(/^[ \t]+|[ \t]+$/, "", s); print s; exit }' "$RAW")
    fi
done

{
    printf '{\n  "benchmarks": [\n'
    # strip the trailing comma off the last entry
    sed '$ s/},$/}/' "$ENTRIES"
    printf '  ],\n  "cpu": "%s"\n}\n' "$CPU"
} > "$OUT"

echo "wrote $OUT"

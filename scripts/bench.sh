#!/bin/sh
# Hot-path benchmark runner: runs the perf-critical benches with -benchmem
# and records the parsed results in BENCH_hotpath.json at the repo root.
# Usage: scripts/bench.sh [extra go-test args, e.g. -benchtime 2s]
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_hotpath.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run NONE \
    -bench 'BenchmarkTransition|BenchmarkThermalAdvance|BenchmarkRunPair|BenchmarkSweepWorkers' \
    -benchmem "$@" . | tee "$RAW"

# Parse `go test -bench` lines into JSON:
#   BenchmarkX/sub-N   iters   T ns/op [extra metrics...]  B B/op  A allocs/op
awk '
BEGIN { printf "{\n  \"benchmarks\": [\n"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = ""; bpo = ""; apo = ""; extras = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns  = $i
        if ($(i+1) == "B/op")      bpo = $i
        if ($(i+1) == "allocs/op") apo = $i
        # custom b.ReportMetric units (e.g. hit_pct)
        if ($(i+1) ~ /^[a-z_]+$/ && $(i+1) !~ /^(ns|B|allocs)\/op$/) {
            if (extras != "") extras = extras ", "
            extras = sprintf("%s\"%s\": %s", extras, $(i+1), $i)
        }
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bpo != "") printf ", \"bytes_per_op\": %s", bpo
    if (apo != "") printf ", \"allocs_per_op\": %s", apo
    if (extras != "") printf ", %s", extras
    printf "}"
}
/^cpu:/ { cpu = substr($0, 6); gsub(/^[ \t]+|[ \t]+$/, "", cpu) }
END {
    printf "\n  ],\n"
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s\n", maxprocs
    printf "}\n"
}' maxprocs="$(nproc 2>/dev/null || echo 1)" "$RAW" > "$OUT"

echo "wrote $OUT"

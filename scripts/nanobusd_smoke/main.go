// Command nanobusd_smoke is the end-to-end gate for the service: it execs
// a built nanobusd binary on an ephemeral port (HTTP and NBWP), drives
// the same session schedule through the transport-agnostic client.Session
// interface over both transports, requires each result to be bit-for-bit
// identical to an in-process library run — including the SAMPLE frames
// streamed live over NBWP — then SIGTERMs the daemon and requires a clean
// drain (exit 0, "drained cleanly" on stdout).
//
// A third leg drives a 4-bus interleaved session over both transports —
// including a checkpoint-envelope download and an inline resurrect-and-
// replay, which must work even against this store-less daemon — and
// requires every figure, per-bus blocks included, to be bit-identical
// across HTTP and NBWP; the replayed tail must agree to rounding (a K>1
// restore re-warms the memo cold, see MultiSim.Snapshot).
//
//	go build -o /tmp/nanobusd ./cmd/nanobusd
//	go run ./scripts/nanobusd_smoke -bin /tmp/nanobusd
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"nanobus"
	"nanobus/client"
)

func main() {
	bin := flag.String("bin", "", "path to the built nanobusd binary")
	timeout := flag.Duration("timeout", 60*time.Second, "overall smoke deadline")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "nanobusd_smoke: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "nanobusd_smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("nanobusd_smoke: PASS")
}

func run(ctx context.Context, bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-nbwp-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	// On any failure path, make sure the daemon does not outlive us.
	defer func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill() //nanolint:ignore droppederr best-effort cleanup of a failed run
			_ = cmd.Wait()         //nanolint:ignore droppederr best-effort cleanup of a failed run
		}
	}()

	// The first stdout line announces the bound HTTP address, the second
	// the NBWP one; later lines are collected so the drain message can be
	// checked after shutdown.
	sc := bufio.NewScanner(stdout)
	addr, err := awaitListening(sc)
	if err != nil {
		return err
	}
	nbwpAddr, err := awaitNBWP(sc)
	if err != nil {
		return err
	}
	rest := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		rest <- strings.Join(lines, "\n")
	}()

	if err := driveSession(ctx, "http://"+addr); err != nil {
		return err
	}
	if err := driveSessionNBWP(ctx, nbwpAddr); err != nil {
		return err
	}
	if err := driveMulti(ctx, "http://"+addr, nbwpAddr); err != nil {
		return err
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %w", err)
	}
	// Collect the stdout tail to EOF BEFORE cmd.Wait(): Wait closes the
	// pipe the moment the process exits, which can cut off the reader
	// goroutine before it has consumed the buffered drain message.
	var tail string
	select {
	case tail = <-rest:
		// Pipe EOF: the daemon has closed stdout, i.e. it has exited.
	case <-ctx.Done():
		return fmt.Errorf("nanobusd did not exit after SIGTERM: %w", ctx.Err())
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("nanobusd exited uncleanly after SIGTERM: %w", err)
	}
	if !strings.Contains(tail, "drained cleanly") {
		return fmt.Errorf("missing drain message in output:\n%s", tail)
	}
	return nil
}

func awaitListening(sc *bufio.Scanner) (string, error) {
	const prefix = "nanobusd: listening on "
	if !sc.Scan() {
		return "", fmt.Errorf("nanobusd produced no output: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, prefix) {
		return "", fmt.Errorf("unexpected first line %q", line)
	}
	return strings.TrimPrefix(line, prefix), nil
}

func awaitNBWP(sc *bufio.Scanner) (string, error) {
	const prefix = "nanobusd: nbwp on "
	if !sc.Scan() {
		return "", fmt.Errorf("nanobusd produced no nbwp banner: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, prefix) {
		return "", fmt.Errorf("unexpected second line %q", line)
	}
	return strings.TrimPrefix(line, prefix), nil
}

const (
	nodeName = "90nm"
	scheme   = "BI"
	interval = 256
	nWords   = 1000
	nIdle    = 500
)

// schedule builds the deterministic word stream both transports and the
// library reference all run.
func schedule() []uint32 {
	data := make([]uint32, nWords)
	x := uint32(42)
	for i := range data {
		x = x*1664525 + 1013904223
		data[i] = x
	}
	return data
}

// runSchedule drives the shared schedule through one session handle via
// the transport-agnostic interface and compares the result against the
// in-process library bit for bit. Both wire protocols go through this
// exact code path; anything transport-specific stays in the legs.
func runSchedule(ctx context.Context, sess client.Session) (*client.Result, error) {
	data := schedule()
	if _, err := sess.StepBinary(ctx, data); err != nil {
		return nil, fmt.Errorf("step: %w", err)
	}
	if _, err := sess.StepIdle(ctx, nIdle); err != nil {
		return nil, fmt.Errorf("idle: %w", err)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("result: %w", err)
	}
	if err := sess.Close(ctx); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	if err := compareToLibrary(ctx, res, data); err != nil {
		return nil, err
	}
	return res, nil
}

// driveSession runs one schedule over the HTTP transport.
func driveSession(ctx context.Context, baseURL string) error {
	c := client.New(baseURL)
	if err := c.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	sess, err := c.OpenSession(ctx, client.SessionConfig{
		Node: nodeName, Encoding: scheme, IntervalCycles: interval,
	})
	if err != nil {
		return fmt.Errorf("create session: %w", err)
	}
	res, err := runSchedule(ctx, sess)
	if err != nil {
		return err
	}
	fmt.Printf("nanobusd_smoke: http: %d words + %d idle cycles bit-identical across %d samples (total %.4g J)\n",
		nWords, nIdle, len(res.Samples), res.Total.TotalJ)
	return nil
}

// driveSessionNBWP runs the same schedule over the binary protocol. The
// session is opened with the concrete NBWP constructor — live sample
// streaming is a transport-specific extra outside the Session interface —
// but the schedule itself runs through the same runSchedule path as HTTP,
// and the streamed SAMPLE frames must carry the same IEEE-754 bit
// patterns as the result document.
func driveSessionNBWP(ctx context.Context, addr string) error {
	nc, err := client.DialNBWP(ctx, addr)
	if err != nil {
		return fmt.Errorf("dial nbwp: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort close; the run already reported its outcome
		_ = nc.Close()
	}()
	var streamed []client.Sample
	sess, err := nc.Open(ctx, client.SessionConfig{
		Node: nodeName, Encoding: scheme, IntervalCycles: interval,
	}, func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		return fmt.Errorf("nbwp open: %w", err)
	}
	res, err := runSchedule(ctx, sess)
	if err != nil {
		return fmt.Errorf("nbwp: %w", err)
	}
	if err := nc.Goodbye(ctx); err != nil {
		return fmt.Errorf("nbwp goodbye: %w", err)
	}
	// The sample callback fires before the triggering step is acked, so
	// everything streamed is visible here. The final partial interval is
	// closed by Result, not streamed.
	if len(streamed) > len(res.Samples) {
		return fmt.Errorf("nbwp streamed %d samples, result has %d", len(streamed), len(res.Samples))
	}
	for i, ws := range streamed {
		rs := res.Samples[i]
		if ws.EndCycle != rs.EndCycle ||
			math.Float64bits(ws.EnergyJ) != math.Float64bits(rs.EnergyJ) ||
			math.Float64bits(ws.MaxTempK) != math.Float64bits(rs.MaxTempK) {
			return fmt.Errorf("nbwp streamed sample %d differs: stream %+v, result %+v", i, ws, rs)
		}
	}
	fmt.Printf("nanobusd_smoke: nbwp: %d words + %d idle cycles bit-identical; %d/%d samples streamed live (total %.4g J)\n",
		nWords, nIdle, len(streamed), len(res.Samples), res.Total.TotalJ)
	return nil
}

// compareToLibrary replays the schedule through the in-process library
// and compares every figure bit for bit.
func compareToLibrary(ctx context.Context, res *client.Result, data []uint32) error {
	node, err := nanobus.ResolveNode(nodeName)
	if err != nil {
		return err
	}
	bus, err := nanobus.New(node, nanobus.WithEncoding(scheme), nanobus.WithInterval(interval))
	if err != nil {
		return err
	}
	if _, err := bus.StepBatch(ctx, data); err != nil {
		return err
	}
	if _, err := bus.StepIdleBatch(ctx, nIdle); err != nil {
		return err
	}
	if err := bus.Finish(); err != nil {
		return err
	}

	tot := bus.TotalEnergy()
	checks := []struct {
		name     string
		svc, lib float64
	}{
		{"total energy", res.Total.TotalJ, tot.Total()},
		{"self energy", res.Total.SelfJ, tot.Self},
		{"adjacent coupling", res.Total.CoupAdjJ, tot.CoupAdj},
		{"non-adjacent coupling", res.Total.CoupNonAdjJ, tot.CoupNonAdj},
		{"avg temp", res.AvgTempK, bus.Network().AvgTemp()},
		{"max temp", res.MaxTempK, func() float64 { t, _ := bus.Network().MaxTemp(); return t }()},
	}
	for _, ck := range checks {
		if math.Float64bits(ck.svc) != math.Float64bits(ck.lib) {
			return fmt.Errorf("%s differs: service %.17g, library %.17g", ck.name, ck.svc, ck.lib)
		}
	}
	if res.Cycles != bus.Cycles() {
		return fmt.Errorf("cycles differ: service %d, library %d", res.Cycles, bus.Cycles())
	}
	if len(res.Samples) != len(bus.Samples()) {
		return fmt.Errorf("sample count differs: service %d, library %d",
			len(res.Samples), len(bus.Samples()))
	}
	for i, ls := range bus.Samples() {
		ss := res.Samples[i]
		if ss.EndCycle != ls.EndCycle ||
			math.Float64bits(ss.EnergyJ) != math.Float64bits(ls.Energy) ||
			math.Float64bits(ss.MaxTempK) != math.Float64bits(ls.MaxTemp) {
			return fmt.Errorf("sample %d differs: service %+v, library %+v", i, ss, ls)
		}
	}
	return nil
}

const (
	mBuses    = 4
	mHeadRows = 600
	mTailRows = 400
	mIdle     = 300
)

// multiSlab builds a deterministic cycle-major interleaved slab: one LCG
// stream per bus, transposed by PackInterleaved.
func multiSlab(seed uint32, rows int) ([]uint32, error) {
	cols := make([][]uint32, mBuses)
	for k := range cols {
		col := make([]uint32, rows)
		x := seed + uint32(k)*2654435761
		for i := range col {
			x = x*1664525 + 1013904223
			col[i] = x
		}
		cols[k] = col
	}
	return client.PackInterleaved(nil, cols...)
}

func feq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// relClose is the rounding-level comparison for post-restore replays: a
// K>1 restore re-warms the shared memo from a cold table and re-associates
// the count-aggregation sums, so continued runs agree to ~1e-12 relative
// rather than bit-exactly (see MultiSim.Snapshot).
func relClose(a, b float64) bool {
	d, m := math.Abs(a-b), math.Abs(b)
	if m == 0 {
		return d == 0
	}
	return d/m <= 1e-11
}

// runMultiSchedule drives the 4-bus schedule through one transport:
// head slab, checkpoint-envelope download, tail slab plus idle, result —
// then resurrects the closed session from the envelope on the same
// transport, replays the tail, and requires bit-identical figures. The
// daemon runs without -checkpoint-dir, so this also pins the store-less
// ?download=1 / inline-resurrect path.
func runMultiSchedule(ctx context.Context, tr client.Transport, head, tail []uint32) (*client.Result, error) {
	sess, err := tr.OpenSession(ctx, client.SessionConfig{
		Node: nodeName, Encoding: scheme, IntervalCycles: interval, Buses: mBuses,
	})
	if err != nil {
		return nil, fmt.Errorf("open multi: %w", err)
	}
	sum, err := sess.StepBinary(ctx, head)
	if err != nil {
		return nil, fmt.Errorf("multi head: %w", err)
	}
	if sum.Cycles != mHeadRows {
		return nil, fmt.Errorf("multi head: %d cycles after %d interleaved rows", sum.Cycles, mHeadRows)
	}
	env, err := sess.CheckpointDownload(ctx)
	if err != nil {
		return nil, fmt.Errorf("multi checkpoint download: %w", err)
	}
	if _, err := sess.StepBinary(ctx, tail); err != nil {
		return nil, fmt.Errorf("multi tail: %w", err)
	}
	if _, err := sess.StepIdle(ctx, mIdle); err != nil {
		return nil, fmt.Errorf("multi idle: %w", err)
	}
	ref, err := sess.Result(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("multi result: %w", err)
	}
	if err := sess.Close(ctx); err != nil {
		return nil, fmt.Errorf("multi close: %w", err)
	}

	res2, resp, err := tr.Resurrect(ctx, sess.ID(), env)
	if err != nil {
		return nil, fmt.Errorf("multi resurrect: %w", err)
	}
	if resp.Cycles != mHeadRows {
		return nil, fmt.Errorf("multi resurrect landed on cycle %d, want %d", resp.Cycles, mHeadRows)
	}
	if _, err := res2.StepBinary(ctx, tail); err != nil {
		return nil, fmt.Errorf("multi replay tail: %w", err)
	}
	if _, err := res2.StepIdle(ctx, mIdle); err != nil {
		return nil, fmt.Errorf("multi replay idle: %w", err)
	}
	replay, err := res2.Result(ctx, true)
	if err != nil {
		return nil, fmt.Errorf("multi replay result: %w", err)
	}
	if err := res2.Close(ctx); err != nil {
		return nil, fmt.Errorf("multi replay close: %w", err)
	}
	if err := compareMulti("resurrect replay", replay, ref, relClose); err != nil {
		return nil, err
	}
	return ref, nil
}

// compareMulti requires two multi-bus results to agree on every figure,
// per-bus blocks included, under the given float comparison (feq for
// bit-exact transport comparisons, relClose for post-restore replays).
func compareMulti(what string, got, want *client.Result, eq func(a, b float64) bool) error {
	if got.Cycles != want.Cycles || got.Buses != want.Buses ||
		got.MaxBus != want.MaxBus || got.MaxWire != want.MaxWire {
		return fmt.Errorf("%s: shape differs: %d cycles/%d buses/max %d:%d vs %d/%d/%d:%d", what,
			got.Cycles, got.Buses, got.MaxBus, got.MaxWire,
			want.Cycles, want.Buses, want.MaxBus, want.MaxWire)
	}
	if !eq(got.Total.TotalJ, want.Total.TotalJ) || !eq(got.Total.SelfJ, want.Total.SelfJ) ||
		!eq(got.Total.CoupAdjJ, want.Total.CoupAdjJ) || !eq(got.Total.CoupNonAdjJ, want.Total.CoupNonAdjJ) ||
		!eq(got.AvgTempK, want.AvgTempK) || !eq(got.MaxTempK, want.MaxTempK) {
		return fmt.Errorf("%s: totals differ: %+v vs %+v", what, got.Total, want.Total)
	}
	if len(got.PerBus) != mBuses || len(want.PerBus) != mBuses {
		return fmt.Errorf("%s: per_bus lengths %d/%d, want %d", what, len(got.PerBus), len(want.PerBus), mBuses)
	}
	for k := range want.PerBus {
		g, w := got.PerBus[k], want.PerBus[k]
		if !eq(g.Total.TotalJ, w.Total.TotalJ) || !eq(g.MaxTempK, w.MaxTempK) ||
			len(g.Samples) != len(w.Samples) {
			return fmt.Errorf("%s: bus %d differs: %.17g J/%.17g K/%d samples vs %.17g J/%.17g K/%d samples",
				what, k, g.Total.TotalJ, g.MaxTempK, len(g.Samples), w.Total.TotalJ, w.MaxTempK, len(w.Samples))
		}
		for i := range w.Samples {
			if g.Samples[i].EndCycle != w.Samples[i].EndCycle ||
				!eq(g.Samples[i].EnergyJ, w.Samples[i].EnergyJ) {
				return fmt.Errorf("%s: bus %d sample %d differs", what, k, i)
			}
		}
	}
	return nil
}

// driveMulti runs the 4-bus leg on each transport and requires the two
// results to be bit-identical to each other.
func driveMulti(ctx context.Context, baseURL, nbwpAddr string) error {
	head, err := multiSlab(7, mHeadRows)
	if err != nil {
		return err
	}
	tail, err := multiSlab(1009, mTailRows)
	if err != nil {
		return err
	}
	httpRes, err := runMultiSchedule(ctx, client.New(baseURL), head, tail)
	if err != nil {
		return fmt.Errorf("multi http: %w", err)
	}
	nc, err := client.DialNBWP(ctx, nbwpAddr)
	if err != nil {
		return fmt.Errorf("multi dial nbwp: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort close; the run already reported its outcome
		_ = nc.Close()
	}()
	nbwpRes, err := runMultiSchedule(ctx, nc, head, tail)
	if err != nil {
		return fmt.Errorf("multi nbwp: %w", err)
	}
	if err := nc.Goodbye(ctx); err != nil {
		return fmt.Errorf("multi nbwp goodbye: %w", err)
	}
	if err := compareMulti("http vs nbwp", nbwpRes, httpRes, feq); err != nil {
		return err
	}
	fmt.Printf("nanobusd_smoke: multi: %d buses x %d rows + %d idle bit-identical across transports, checkpoint replay agrees (total %.4g J, hottest bus %d)\n",
		mBuses, mHeadRows+mTailRows, mIdle, httpRes.Total.TotalJ, httpRes.MaxBus)
	return nil
}

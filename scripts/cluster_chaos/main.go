// Command cluster_chaos is the acceptance gate for cluster mode: it boots
// a three-node nanobusd cluster (static membership, per-node checkpoint
// directories, replication factor 2), opens 64 sessions through the
// client Router, streams sequenced batches at all of them concurrently,
// then kill -9s the node hosting the most sessions while STEP traffic is
// in flight. Every orphaned session must fail over — Recover resurrects
// it from a replicated checkpoint on a survivor, the driver replays the
// tail, duplicates are absorbed — and every session's final energy and
// thermal figures must be bit-for-bit identical to an uninterrupted
// in-process library run of the same schedule. The two survivors must
// then drain cleanly.
//
//	go build -o /tmp/nanobusd ./cmd/nanobusd
//	go run ./scripts/cluster_chaos -bin /tmp/nanobusd
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"nanobus"
	"nanobus/client"
)

const (
	nodeName   = "90nm"
	scheme     = "BI"
	interval   = 100
	batchWords = 150
	nBatches   = 12
	ckptEvery  = "300" // cycles: one auto-checkpoint every two batches
	nNodes     = 3
)

func main() {
	bin := flag.String("bin", "", "path to the built nanobusd binary")
	sessions := flag.Int("sessions", 64, "concurrent sessions across the cluster")
	timeout := flag.Duration("timeout", 150*time.Second, "overall chaos deadline")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "cluster_chaos: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, *bin, *sessions); err != nil {
		fmt.Fprintf(os.Stderr, "cluster_chaos: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cluster_chaos: PASS")
}

// batch regenerates session sid's word batch for sequence number seq from
// (sid, seq) alone — the resume contract: any batch past the last
// checkpoint can be rebuilt on demand and replayed after a failover.
func batch(sid int, seq uint64) []uint32 {
	words := make([]uint32, batchWords)
	x := uint32(sid)*0x9E3779B9 + uint32(seq)*2654435761 + 1
	for i := range words {
		x = x*1664525 + 1013904223
		words[i] = x
	}
	return words
}

// reference runs session sid's full schedule through the in-process
// library, uninterrupted.
func reference(ctx context.Context, sid int) (*nanobus.Bus, error) {
	node, err := nanobus.ResolveNode(nodeName)
	if err != nil {
		return nil, err
	}
	bus, err := nanobus.New(node, nanobus.WithEncoding(scheme), nanobus.WithInterval(interval))
	if err != nil {
		return nil, err
	}
	for seq := uint64(1); seq <= nBatches; seq++ {
		if _, err := bus.StepBatch(ctx, batch(sid, seq)); err != nil {
			return nil, err
		}
	}
	if err := bus.Finish(); err != nil {
		return nil, err
	}
	return bus, nil
}

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them. The tiny race between release and the daemon's bind is accepted:
// the members list must name every node's address before any node starts.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		if err := ln.Close(); err != nil {
			return nil, err
		}
	}
	return addrs, nil
}

// member is one exec'd cluster node.
type member struct {
	name     string
	httpAddr string
	nbwpAddr string
	cmd      *exec.Cmd
	rest     chan string
}

func (m *member) url() string { return "http://" + m.httpAddr }

// start execs one nanobusd cluster node and waits for its banners.
func (m *member) start(bin, dir, members string) error {
	m.cmd = exec.Command(bin,
		"-addr", m.httpAddr, "-nbwp-addr", m.nbwpAddr,
		"-checkpoint-dir", dir, "-checkpoint-every", ckptEvery,
		"-cluster-self", m.name, "-cluster-members", members, "-cluster-replicas", "2")
	stdout, err := m.cmd.StdoutPipe()
	if err != nil {
		return err
	}
	m.cmd.Stderr = os.Stderr
	if err := m.cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", m.name, err)
	}
	sc := bufio.NewScanner(stdout)
	for _, prefix := range []string{"nanobusd: listening on ", "nanobusd: nbwp on "} {
		if !sc.Scan() {
			m.kill()
			return fmt.Errorf("%s: stdout ended before %q: %v", m.name, prefix, sc.Err())
		}
		if line := sc.Text(); !strings.HasPrefix(line, prefix) {
			m.kill()
			return fmt.Errorf("%s: unexpected line %q (want %q prefix)", m.name, line, prefix)
		}
	}
	m.rest = make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		m.rest <- strings.Join(lines, "\n")
	}()
	return nil
}

// kill simulates a node crash: SIGKILL, no drain, no goodbye.
func (m *member) kill() {
	_ = m.cmd.Process.Kill() //nanolint:ignore droppederr SIGKILL on a live child cannot meaningfully fail
	_ = m.cmd.Wait()         //nanolint:ignore droppederr the child was SIGKILLed; a non-zero exit is the point
}

// drain SIGTERMs the node and requires a clean exit with the drain
// message (stdout tail collected before Wait; see scripts/nanobusd_smoke).
func (m *member) drain(ctx context.Context) error {
	if err := m.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("%s: SIGTERM: %w", m.name, err)
	}
	var tail string
	select {
	case tail = <-m.rest:
	case <-ctx.Done():
		return fmt.Errorf("%s did not exit after SIGTERM: %w", m.name, ctx.Err())
	}
	if err := m.cmd.Wait(); err != nil {
		return fmt.Errorf("%s exited uncleanly after SIGTERM: %w", m.name, err)
	}
	if !strings.Contains(tail, "drained cleanly") {
		return fmt.Errorf("%s: missing drain message in output:\n%s", m.name, tail)
	}
	return nil
}

// driver streams one session's schedule through a RoutedSession,
// recovering from node death by resurrecting on a survivor and replaying.
type driver struct {
	sid        int
	rs         *client.RoutedSession
	openedOn   string
	recoveries int
}

// steps sends sequenced batches first..last (pacing each ack by pace, so
// the kill window has traffic in flight); any failure triggers a Recover
// (resurrect from the replicated checkpoint store on whichever candidate
// can) and a replay from the restored frontier. A rewind may land below
// first; replays at or below the frontier come back Duplicate and are
// never double-counted.
func (d *driver) steps(ctx context.Context, first, last uint64, pace time.Duration) error {
	for seq := first; seq <= last; {
		_, err := d.rs.StepBinarySeq(ctx, seq, batch(d.sid, seq))
		if err == nil {
			seq++
			if pace > 0 {
				time.Sleep(pace)
			}
			continue
		}
		if ctx.Err() != nil {
			return err
		}
		res, rerr := d.recover(ctx, fmt.Sprintf("seq %d: %v", seq, err))
		if rerr != nil {
			return rerr
		}
		seq = res.Seq + 1
	}
	return nil
}

// run drives the whole schedule: stream to seq 5, check in at the
// barrier, then race the tail against the kill and fetch the result.
func (d *driver) run(ctx context.Context, ready *sync.WaitGroup, goCh <-chan struct{}) (*client.Result, error) {
	err := d.steps(ctx, 1, 5, 0)
	ready.Done()
	if err != nil {
		return nil, fmt.Errorf("session %d warmup: %w", d.sid, err)
	}
	<-goCh
	if err := d.steps(ctx, 6, nBatches, 10*time.Millisecond); err != nil {
		return nil, fmt.Errorf("session %d tail: %w", d.sid, err)
	}
	return d.finish(ctx)
}

// recover fails the session over with a bounded number of attempts. A
// short backoff covers the window where the killed process's ports are
// still settling.
func (d *driver) recover(ctx context.Context, cause string) (client.RestoreResponse, error) {
	for {
		if d.recoveries++; d.recoveries > 8 {
			return client.RestoreResponse{}, fmt.Errorf("session %d: giving up after %d recoveries (%s)",
				d.sid, d.recoveries-1, cause)
		}
		res, err := d.rs.Recover(ctx)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return client.RestoreResponse{}, err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// finish fetches the final result, recovering and replaying if the node
// died between the last ack and the result fetch.
func (d *driver) finish(ctx context.Context) (*client.Result, error) {
	for attempt := 0; ; attempt++ {
		res, err := d.rs.Result(ctx, true)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil || attempt >= 3 {
			return nil, fmt.Errorf("session %d result: %w", d.sid, err)
		}
		rr, rerr := d.recover(ctx, fmt.Sprintf("result: %v", err))
		if rerr != nil {
			return nil, rerr
		}
		if serr := d.steps(ctx, rr.Seq+1, nBatches, 0); serr != nil {
			return nil, serr
		}
	}
}

// compareFinal requires every service figure to match the uninterrupted
// library run bit for bit.
func compareFinal(sid int, ref *nanobus.Bus, final *client.Result) error {
	tot := ref.TotalEnergy()
	maxT, _ := ref.Network().MaxTemp()
	checks := []struct {
		name     string
		svc, lib float64
	}{
		{"total energy", final.Total.TotalJ, tot.Total()},
		{"self energy", final.Total.SelfJ, tot.Self},
		{"adjacent coupling", final.Total.CoupAdjJ, tot.CoupAdj},
		{"non-adjacent coupling", final.Total.CoupNonAdjJ, tot.CoupNonAdj},
		{"avg temp", final.AvgTempK, ref.Network().AvgTemp()},
		{"max temp", final.MaxTempK, maxT},
	}
	for _, ck := range checks {
		if math.Float64bits(ck.svc) != math.Float64bits(ck.lib) {
			return fmt.Errorf("session %d: %s differs after failover: service %.17g, library %.17g",
				sid, ck.name, ck.svc, ck.lib)
		}
	}
	if final.Cycles != ref.Cycles() {
		return fmt.Errorf("session %d: cycles differ: service %d, library %d", sid, final.Cycles, ref.Cycles())
	}
	libSamples := ref.Samples()
	if len(final.Samples) != len(libSamples) {
		return fmt.Errorf("session %d: sample count differs: service %d, library %d",
			sid, len(final.Samples), len(libSamples))
	}
	for i, ls := range libSamples {
		ss := final.Samples[i]
		if ss.EndCycle != ls.EndCycle ||
			math.Float64bits(ss.EnergyJ) != math.Float64bits(ls.Energy) ||
			math.Float64bits(ss.MaxTempK) != math.Float64bits(ls.MaxTemp) {
			return fmt.Errorf("session %d: sample %d differs: service %+v, library %+v", sid, i, ss, ls)
		}
	}
	return nil
}

func run(ctx context.Context, bin string, sessions int) error {
	root, err := os.MkdirTemp("", "nanobus-cluster-chaos-*")
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr best-effort temp-dir cleanup on exit
		_ = os.RemoveAll(root)
	}()

	// Boot the three-node cluster on pre-reserved ports (the membership
	// list has to name every address before the first node starts).
	addrs, err := freeAddrs(2 * nNodes)
	if err != nil {
		return err
	}
	members := make([]*member, nNodes)
	var specs []string
	for i := range members {
		members[i] = &member{
			name:     fmt.Sprintf("n%d", i+1),
			httpAddr: addrs[2*i],
			nbwpAddr: addrs[2*i+1],
		}
		specs = append(specs, fmt.Sprintf("%s=http://%s+%s", members[i].name, members[i].httpAddr, members[i].nbwpAddr))
	}
	spec := strings.Join(specs, ",")
	for i, m := range members {
		dir := fmt.Sprintf("%s/%s", root, m.name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := m.start(bin, dir, spec); err != nil {
			return err
		}
		defer func(m *member) {
			if m.cmd.ProcessState == nil {
				m.kill()
			}
		}(members[i])
	}
	fmt.Printf("cluster_chaos: 3 nodes up (%s)\n", spec)

	router, err := client.NewRouter(ctx, []string{members[0].url()}, client.WithRouterNBWP())
	if err != nil {
		return fmt.Errorf("router bootstrap: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort close; the run already reported its outcome
		_ = router.Close()
	}()

	// Open every session up front so the victim — the node hosting the
	// most sessions — can be picked before traffic starts. Nodes mint ids
	// they own, so placement is decided by the ring at create time.
	drivers := make([]*driver, sessions)
	hosted := map[string]int{}
	cfg := client.SessionConfig{Node: nodeName, Encoding: scheme, IntervalCycles: interval}
	for i := range drivers {
		rs, err := router.Open(ctx, cfg)
		if err != nil {
			return fmt.Errorf("open session %d: %w", i+1, err)
		}
		drivers[i] = &driver{sid: i + 1, rs: rs, openedOn: rs.Node()}
		hosted[rs.Node()]++
	}
	victim := members[0]
	for _, m := range members {
		if hosted[m.name] > hosted[victim.name] {
			victim = m
		}
	}
	if hosted[victim.name] == 0 {
		return fmt.Errorf("no node hosts any sessions (placement: %v)", hosted)
	}
	fmt.Printf("cluster_chaos: %d sessions placed %v; victim is %s with %d\n",
		sessions, hosted, victim.name, hosted[victim.name])

	// Phase 1: every session streams to seq 5 (so at least two
	// auto-checkpoints per session have been taken and replicated), then
	// all drivers are released into the paced tail together and the
	// victim is SIGKILLed while their STEP traffic is in flight.
	var (
		wg, ready sync.WaitGroup
		goCh      = make(chan struct{})
	)
	errs := make([]error, len(drivers))
	finals := make([]*client.Result, len(drivers))
	ready.Add(len(drivers))
	wg.Add(len(drivers))
	for i, d := range drivers {
		go func(i int, d *driver) {
			defer wg.Done()
			finals[i], errs[i] = d.run(ctx, &ready, goCh)
		}(i, d)
	}
	ready.Wait()
	close(goCh)
	time.Sleep(30 * time.Millisecond)
	fmt.Printf("cluster_chaos: kill -9 %s (pid %d) with all %d sessions streaming\n",
		victim.name, victim.cmd.Process.Pid, sessions)
	victim.kill()
	wg.Wait()

	// Every session — including every one orphaned by the kill — must
	// have completed its schedule and must match the uninterrupted
	// library run bit for bit.
	recovered := 0
	for i, d := range drivers {
		if errs[i] != nil {
			return errs[i]
		}
		ref, err := reference(ctx, d.sid)
		if err != nil {
			return fmt.Errorf("reference run %d: %w", d.sid, err)
		}
		if err := compareFinal(d.sid, ref, finals[i]); err != nil {
			return err
		}
		if d.recoveries > 0 {
			recovered++
		}
		if d.openedOn == victim.name {
			if d.recoveries == 0 {
				return fmt.Errorf("session %d was hosted on the victim but never failed over", d.sid)
			}
			if d.rs.Node() == victim.name {
				return fmt.Errorf("session %d still routed to the dead node %s", d.sid, victim.name)
			}
		}
		if err := d.rs.Close(ctx); err != nil {
			return fmt.Errorf("close session %d: %w", d.sid, err)
		}
	}
	if recovered < hosted[victim.name] {
		return fmt.Errorf("only %d sessions recovered; the victim hosted %d", recovered, hosted[victim.name])
	}
	fmt.Printf("cluster_chaos: all %d sessions bit-identical; %d failed over from %s to survivors\n",
		sessions, recovered, victim.name)

	// The survivors must still drain cleanly — after the Router's pooled
	// NBWP connections are gone, since the drain waits them out.
	if err := router.Close(); err != nil {
		return fmt.Errorf("router close: %w", err)
	}
	for _, m := range members {
		if m == victim {
			continue
		}
		if err := m.drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Command adaptive_gate is the CI gate for the adaptive cooling-code
// controller. It pins the two properties the feature promises:
//
//  1. Library leg: the self-calibrating cooling experiment (expt.Cooling,
//     45nm / mcf, small window) derives a ceiling the controller defends
//     on every sample while the static base encoder exceeds it, with at
//     most 15% bandwidth overhead — and a second run reproduces the
//     ceiling, the peak and every switch point bit for bit.
//
//  2. Transport leg: against an exec'd nanobusd, a self-calibrated
//     adaptive session is driven over HTTP (twice) and over NBWP; the
//     switch schedule, occupancy split and per-sample encoder tags must
//     be bit-identical across all three runs, every adaptive sample must
//     stay at or under the derived ceiling, and the static base run must
//     exceed it.
//
//     go build -o /tmp/nanobusd ./cmd/nanobusd
//     go run ./scripts/adaptive_gate -bin /tmp/nanobusd
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"time"

	"nanobus/client"
	"nanobus/internal/expt"
	"nanobus/internal/itrs"
)

func main() {
	bin := flag.String("bin", "", "path to the built nanobusd binary")
	timeout := flag.Duration("timeout", 120*time.Second, "overall gate deadline")
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "adaptive_gate: -bin is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := libraryLeg(); err != nil {
		fmt.Fprintf(os.Stderr, "adaptive_gate: FAIL: library: %v\n", err)
		os.Exit(1)
	}
	if err := transportLeg(ctx, *bin); err != nil {
		fmt.Fprintf(os.Stderr, "adaptive_gate: FAIL: transport: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("adaptive_gate: PASS")
}

// libraryLeg runs the cooling cell twice in process and pins the headline
// claims plus bit-exact reproducibility of the derivation.
func libraryLeg() error {
	opts := expt.CoolingOptions{
		Cycles:         2_000_000,
		IntervalCycles: 100_000,
		Nodes:          []itrs.Node{itrs.N45},
		Benchmarks:     []string{"mcf"},
	}
	first, err := expt.Cooling(opts)
	if err != nil {
		return err
	}
	if len(first) != 1 {
		return fmt.Errorf("got %d cells, want 1", len(first))
	}
	c := first[0]
	if !c.Defended {
		return fmt.Errorf("ceiling %.6f K not defended: adaptive peak %.6f K", c.CeilingK, c.PeakAdaptiveK)
	}
	if !c.BaseExceeds {
		return fmt.Errorf("static %s peak %.6f K does not exceed the ceiling %.6f K", c.Base, c.PeakBaseK, c.CeilingK)
	}
	if len(c.Switches) == 0 {
		return fmt.Errorf("no encoder switch recorded")
	}
	if c.OverheadPct > 15 {
		return fmt.Errorf("bandwidth overhead %.1f%% > 15%%", c.OverheadPct)
	}
	for i, s := range c.Samples {
		if s.MaxTemp > c.CeilingK {
			return fmt.Errorf("sample %d exceeds the ceiling: %.6f K > %.6f K", i, s.MaxTemp, c.CeilingK)
		}
	}

	second, err := expt.Cooling(opts)
	if err != nil {
		return err
	}
	c2 := second[0]
	if math.Float64bits(c2.CeilingK) != math.Float64bits(c.CeilingK) ||
		math.Float64bits(c2.PeakAdaptiveK) != math.Float64bits(c.PeakAdaptiveK) {
		return fmt.Errorf("re-run derived a different cell: ceiling %.17g vs %.17g, peak %.17g vs %.17g",
			c2.CeilingK, c.CeilingK, c2.PeakAdaptiveK, c.PeakAdaptiveK)
	}
	if len(c2.Switches) != len(c.Switches) {
		return fmt.Errorf("re-run switch count %d, want %d", len(c2.Switches), len(c.Switches))
	}
	for i := range c.Switches {
		a, b := c.Switches[i], c2.Switches[i]
		if a.Cycle != b.Cycle || a.From != b.From || a.To != b.To ||
			math.Float64bits(a.TempK) != math.Float64bits(b.TempK) {
			return fmt.Errorf("switch %d differs across runs: %+v vs %+v", i, a, b)
		}
	}
	fmt.Printf("adaptive_gate: library: %s/%s ceiling %.4f K defended (base peak %.4f K, %d switch(es), %.1f%% overhead), re-run bit-identical\n",
		c.Node, c.Benchmark, c.CeilingK, c.PeakBaseK, len(c.Switches), c.OverheadPct)
	return nil
}

const (
	gateNode     = "45nm"
	gateInterval = 1000
	gateWords    = 8 * gateInterval
)

// hammerTrace concentrates all switching on the low half of the bus:
// sixteen wires toggle every cycle while the rest idle, the hotspot
// pattern the base encoder cannot level but the spreading code can.
func hammerTrace() []uint32 {
	out := make([]uint32, gateWords)
	for i := range out {
		if i%2 == 0 {
			out[i] = 0x0000FFFF
		}
	}
	return out
}

type gateRun struct {
	res      *client.Result
	streamed []client.Sample
}

// transportLeg self-calibrates an adaptive session against the daemon the
// same way the cooling experiment does, then requires the switch schedule
// to reproduce bit for bit over HTTP (twice) and NBWP (once, streamed).
func transportLeg(ctx context.Context, bin string) error {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-nbwp-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", bin, err)
	}
	defer func() {
		_ = cmd.Process.Kill() //nanolint:ignore droppederr best-effort teardown of the gate daemon
		_ = cmd.Wait()         //nanolint:ignore droppederr best-effort teardown of the gate daemon
	}()
	sc := bufio.NewScanner(stdout)
	addr, err := awaitBanner(sc, "nanobusd: listening on ")
	if err != nil {
		return err
	}
	nbwpAddr, err := awaitBanner(sc, "nanobusd: nbwp on ")
	if err != nil {
		return err
	}
	go func() { // keep the pipe drained so the daemon never blocks on stdout
		for sc.Scan() {
		}
	}()

	hc := client.New("http://" + addr)
	if err := hc.Healthz(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	trace := hammerTrace()

	// Calibration, over the wire: static base trajectory -> trigger and
	// peak; provisional adaptive at the trigger -> defended peak; final
	// ceiling halfway between the two (the switch schedule only depends on
	// trigger and release, so the final runs reproduce the provisional
	// schedule exactly).
	baseRes, err := runHTTP(ctx, hc, client.SessionConfig{
		Node: gateNode, Encoding: "BI", IntervalCycles: gateInterval,
	}, trace)
	if err != nil {
		return fmt.Errorf("static base run: %w", err)
	}
	if len(baseRes.Samples) < 4 {
		return fmt.Errorf("static base run produced %d samples, need at least 4", len(baseRes.Samples))
	}
	peakBase := peakMaxTempK(baseRes.Samples)
	trigger := baseRes.Samples[len(baseRes.Samples)/2].MaxTempK

	provisional, err := runHTTP(ctx, hc, adaptiveCfg(trigger, 0), trace)
	if err != nil {
		return fmt.Errorf("provisional adaptive run: %w", err)
	}
	peakAd := peakMaxTempK(provisional.Samples)
	if peakAd >= peakBase {
		return fmt.Errorf("controller did not lower the peak: adaptive %.6f K, base %.6f K", peakAd, peakBase)
	}
	ceiling := (peakAd + peakBase) / 2
	cfg := adaptiveCfg(ceiling, ceiling-trigger)

	ref, err := runHTTP(ctx, hc, cfg, trace)
	if err != nil {
		return fmt.Errorf("http adaptive run: %w", err)
	}
	httpAgain, err := runHTTP(ctx, hc, cfg, trace)
	if err != nil {
		return fmt.Errorf("http adaptive re-run: %w", err)
	}
	nbwpRun, err := runNBWP(ctx, nbwpAddr, cfg, trace)
	if err != nil {
		return fmt.Errorf("nbwp adaptive run: %w", err)
	}

	runs := []struct {
		name string
		res  *client.Result
	}{
		{"http re-run", httpAgain},
		{"nbwp", nbwpRun.res},
	}
	if ref.Adaptive == nil || len(ref.Adaptive.Switches) == 0 {
		return fmt.Errorf("adaptive run recorded no switch; the gate would be vacuous")
	}
	for i, s := range ref.Samples {
		if s.MaxTempK > ceiling {
			return fmt.Errorf("adaptive sample %d exceeds the ceiling: %.6f K > %.6f K", i, s.MaxTempK, ceiling)
		}
	}
	if peakBase <= ceiling {
		return fmt.Errorf("static base peak %.6f K does not exceed the ceiling %.6f K", peakBase, ceiling)
	}
	for _, run := range runs {
		if err := sameAdaptiveResult(ref, run.res); err != nil {
			return fmt.Errorf("%s differs from http reference: %w", run.name, err)
		}
	}
	// SAMPLE frames streamed live over NBWP carry the same tags as the
	// retained result samples (the final partial interval is not streamed).
	if len(nbwpRun.streamed) == 0 {
		return fmt.Errorf("nbwp stream produced no samples")
	}
	for i, ss := range nbwpRun.streamed {
		rs := nbwpRun.res.Samples[i]
		if ss.Encoder != rs.Encoder || ss.Switched != rs.Switched ||
			math.Float64bits(ss.MaxTempK) != math.Float64bits(rs.MaxTempK) {
			return fmt.Errorf("nbwp streamed sample %d differs from result: %+v vs %+v", i, ss, rs)
		}
	}

	fmt.Printf("adaptive_gate: transport: ceiling %.4f K defended over http+nbwp (base peak %.4f K, %d switch(es) bit-identical across 3 runs, %d/%d samples streamed)\n",
		ceiling, peakBase, len(ref.Adaptive.Switches), len(nbwpRun.streamed), len(nbwpRun.res.Samples))
	return nil
}

func adaptiveCfg(ceiling, guard float64) client.SessionConfig {
	return client.SessionConfig{
		Node:           gateNode,
		IntervalCycles: gateInterval,
		Adaptive: &client.AdaptiveSpec{
			Base: "BI", Cool: "CoolSpread",
			CeilingK: ceiling, GuardK: guard, HysteresisK: 0.001,
		},
	}
}

func runHTTP(ctx context.Context, hc *client.Client, cfg client.SessionConfig, trace []uint32) (*client.Result, error) {
	sess, err := hc.OpenSession(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := sess.StepBinary(ctx, trace); err != nil {
		return nil, err
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		return nil, err
	}
	if err := sess.Close(ctx); err != nil {
		return nil, err
	}
	return res, nil
}

func runNBWP(ctx context.Context, addr string, cfg client.SessionConfig, trace []uint32) (gateRun, error) {
	nc, err := client.DialNBWP(ctx, addr)
	if err != nil {
		return gateRun{}, err
	}
	defer func() {
		_ = nc.Close() //nanolint:ignore droppederr best-effort close; the run already reported its outcome
	}()
	var streamed []client.Sample
	sess, err := nc.Open(ctx, cfg, func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		return gateRun{}, err
	}
	if _, err := sess.StepBinary(ctx, trace); err != nil {
		return gateRun{}, err
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		return gateRun{}, err
	}
	if err := sess.Close(ctx); err != nil {
		return gateRun{}, err
	}
	if err := nc.Goodbye(ctx); err != nil {
		return gateRun{}, err
	}
	return gateRun{res: res, streamed: streamed}, nil
}

// sameAdaptiveResult requires got's switch schedule, occupancy split,
// per-sample encoder tags and figures to match want bit for bit.
func sameAdaptiveResult(want, got *client.Result) error {
	if got.Adaptive == nil {
		return fmt.Errorf("adaptive result block missing")
	}
	if got.Adaptive.Active != want.Adaptive.Active {
		return fmt.Errorf("active encoder %q, want %q", got.Adaptive.Active, want.Adaptive.Active)
	}
	if len(got.Adaptive.Switches) != len(want.Adaptive.Switches) {
		return fmt.Errorf("switch count %d, want %d", len(got.Adaptive.Switches), len(want.Adaptive.Switches))
	}
	for i, w := range want.Adaptive.Switches {
		g := got.Adaptive.Switches[i]
		if g.Cycle != w.Cycle || g.From != w.From || g.To != w.To ||
			math.Float64bits(g.TempK) != math.Float64bits(w.TempK) {
			return fmt.Errorf("switch %d: %+v, want %+v", i, g, w)
		}
	}
	if len(got.Adaptive.Occupancy) != len(want.Adaptive.Occupancy) {
		return fmt.Errorf("occupancy length %d, want %d", len(got.Adaptive.Occupancy), len(want.Adaptive.Occupancy))
	}
	for i, w := range want.Adaptive.Occupancy {
		if g := got.Adaptive.Occupancy[i]; g != w {
			return fmt.Errorf("occupancy %d: %+v, want %+v", i, g, w)
		}
	}
	if got.Cycles != want.Cycles ||
		math.Float64bits(got.Total.TotalJ) != math.Float64bits(want.Total.TotalJ) ||
		math.Float64bits(got.MaxTempK) != math.Float64bits(want.MaxTempK) {
		return fmt.Errorf("figures differ: got %d cycles %.17g J %.17g K, want %d cycles %.17g J %.17g K",
			got.Cycles, got.Total.TotalJ, got.MaxTempK, want.Cycles, want.Total.TotalJ, want.MaxTempK)
	}
	if len(got.Samples) != len(want.Samples) {
		return fmt.Errorf("sample count %d, want %d", len(got.Samples), len(want.Samples))
	}
	for i, w := range want.Samples {
		g := got.Samples[i]
		if g.Encoder != w.Encoder || g.Switched != w.Switched ||
			math.Float64bits(g.MaxTempK) != math.Float64bits(w.MaxTempK) ||
			math.Float64bits(g.EnergyJ) != math.Float64bits(w.EnergyJ) {
			return fmt.Errorf("sample %d: %+v, want %+v", i, g, w)
		}
	}
	return nil
}

func peakMaxTempK(samples []client.Sample) float64 {
	peak := 0.0
	for _, s := range samples {
		if s.MaxTempK > peak {
			peak = s.MaxTempK
		}
	}
	return peak
}

func awaitBanner(sc *bufio.Scanner, prefix string) (string, error) {
	if !sc.Scan() {
		return "", fmt.Errorf("nanobusd produced no %q banner: %v", prefix, sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, prefix) {
		return "", fmt.Errorf("unexpected line %q, want prefix %q", line, prefix)
	}
	return strings.TrimPrefix(line, prefix), nil
}

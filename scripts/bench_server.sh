#!/bin/sh
# Service throughput benchmark: measures the binary ingest path at three
# levels and records all of them in BENCH_server.json at the repo root.
#
#  - ingest_handler: BenchmarkBinaryIngest, the in-process handler cost
#    from request body to simulator (no sockets, no client). This is the
#    path the batch pipeline optimised, compared against the same
#    benchmark run at the pre-batch-pipeline commit.
#  - runs: scripts/loadgen end to end — in-process (httptest listener)
#    and over real HTTP against an exec'd daemon — for the seq
#    (ingest-stress), address (bus regime) and random (memo-hostile)
#    patterns. End-to-end numbers include client CPU and the network
#    stack, which share one core with the daemon on small machines.
#  - cluster_gate: the PR 8 horizontal-scaling record. Three clustered
#    nanobusd nodes (static membership, per-node checkpoint dirs) are
#    driven by three parallel loadgens — one per node, same seq/NBWP
#    workload as the transport gate — and the aggregate words/s
#    (total words / slowest driver's wall time) is compared against the
#    single-node NBWP gate rate. scripts/benchgate -cluster-gate judges
#    the recorded ratio: >= 2.5x on machines with >= 4 cores, a
#    don't-collapse floor on timeshared boxes (the block records the
#    core count so the right rule applies wherever it is judged).
#  - nbwp_gate + benchmarks: the PR 7 transport gate. The same daemon
#    serves NBWP on a second port; loadgen drives the seq pattern over
#    both transports at 8 and 64 sessions (1 KiB batches, the
#    small-batch regime where HTTP's per-request overhead dominates).
#    The 64-session pair is the acceptance gate: NBWP must deliver
#    > 2x HTTP words/sec with step p99 < 1 ms. Each gate leg runs
#    GATE_REPS times and the least-noisy rep (max words/sec, min p99)
#    is what the gate judges, matching benchgate's min-ns/op fold.
#    The bench-format lines land in the "benchmarks" array so nightly
#    CI can re-run loadgen -bench-out and gate ratios via
#    scripts/benchgate -baseline BENCH_server.json.
#
# Usage: scripts/bench_server.sh [extra loadgen args, e.g. -interval 512]
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_server.json
SESSIONS=8
BATCHES=24
WORDS=16384

# NBWP gate workload: many sessions, small batches, deep pipeline.
GATE_SESSIONS=64
GATE_BATCHES=128
GATE_WORDS=1024
GATE_WINDOW=16
GATE_CONNS=1
GATE_REPS=3
SWEEP_SESSIONS=8
SWEEP_BATCHES=1024

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; for p in ${DPID:-} ${NPIDS:-}; do kill "$p" 2>/dev/null || true; done' EXIT

go build -o "$tmp/loadgen" ./scripts/loadgen
go build -o "$tmp/nanobusd" ./cmd/nanobusd

# Handler-level ingest benchmark: min ns/op of 3 runs.
go test -run NONE -bench BenchmarkBinaryIngest -benchmem -count 3 \
    ./internal/server | tee "$tmp/ingest.txt"
INGEST_NS=$(awk '/^BenchmarkBinaryIngest/ { if (best == "" || $3 < best) best = $3 } END { print best }' "$tmp/ingest.txt")
INGEST_WPS=$(awk -v ns="$INGEST_NS" -v w="$WORDS" 'BEGIN { printf "%.0f", w / (ns / 1e9) }')

RUNS="$tmp/runs.ndjson"
BENCH="$tmp/bench.txt"
: > "$RUNS"
: > "$BENCH"

for pattern in seq address random; do
    "$tmp/loadgen" -inproc -pattern "$pattern" \
        -sessions "$SESSIONS" -batches "$BATCHES" -batch-words "$WORDS" \
        -json "$RUNS" "$@"
done

# Real daemon on ephemeral ports; the bound addresses are printed on the
# first two stdout lines ("nanobusd: listening on HOST:PORT", then
# "nanobusd: nbwp on HOST:PORT").
"$tmp/nanobusd" -addr 127.0.0.1:0 -nbwp-addr 127.0.0.1:0 > "$tmp/nanobusd.out" 2>&1 &
DPID=$!
ADDR=""
NADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/^nanobusd: listening on /{print $4; exit}' "$tmp/nanobusd.out")
    NADDR=$(awk '/^nanobusd: nbwp on /{print $4; exit}' "$tmp/nanobusd.out")
    [ -n "$ADDR" ] && [ -n "$NADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] && [ -n "$NADDR" ] || {
    echo "bench_server: daemon never reported its addresses" >&2
    exit 1
}

for pattern in seq address random; do
    "$tmp/loadgen" -addr "http://$ADDR" -pattern "$pattern" \
        -sessions "$SESSIONS" -batches "$BATCHES" -batch-words "$WORDS" \
        -json "$RUNS" "$@"
done

# Transport gate + sweep: seq pattern, 1 KiB batches, both transports.
rep=0
while [ "$rep" -lt "$GATE_REPS" ]; do
    "$tmp/loadgen" -addr "http://$ADDR" -transport http -pattern seq \
        -sessions "$GATE_SESSIONS" -batches "$GATE_BATCHES" -batch-words "$GATE_WORDS" \
        -json "$RUNS" -bench-out "$BENCH" "$@"
    "$tmp/loadgen" -addr "http://$ADDR" -transport nbwp -nbwp-addr "$NADDR" -pattern seq \
        -sessions "$GATE_SESSIONS" -batches "$GATE_BATCHES" -batch-words "$GATE_WORDS" \
        -window "$GATE_WINDOW" -conns "$GATE_CONNS" \
        -json "$RUNS" -bench-out "$BENCH" "$@"
    rep=$((rep + 1))
done
"$tmp/loadgen" -addr "http://$ADDR" -transport http -pattern seq \
    -sessions "$SWEEP_SESSIONS" -batches "$SWEEP_BATCHES" -batch-words "$GATE_WORDS" \
    -json "$RUNS" -bench-out "$BENCH" "$@"
"$tmp/loadgen" -addr "http://$ADDR" -transport nbwp -nbwp-addr "$NADDR" -pattern seq \
    -sessions "$SWEEP_SESSIONS" -batches "$SWEEP_BATCHES" -batch-words "$GATE_WORDS" \
    -window "$GATE_WINDOW" -conns "$GATE_CONNS" \
    -json "$RUNS" -bench-out "$BENCH" "$@"

kill "$DPID"
wait "$DPID" || true
DPID=""

# --- Cluster leg: 3 clustered nodes, one parallel loadgen per node -----------
# The membership list must name every address before the first node
# starts, so ports are derived from the pid instead of :0.
CORES=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
CBASE=$(( 20000 + ($$ % 20000) ))
MEMBERS="n1=http://127.0.0.1:$((CBASE+1))+127.0.0.1:$((CBASE+4)),n2=http://127.0.0.1:$((CBASE+2))+127.0.0.1:$((CBASE+5)),n3=http://127.0.0.1:$((CBASE+3))+127.0.0.1:$((CBASE+6))"
NPIDS=""
i=1
while [ "$i" -le 3 ]; do
    mkdir -p "$tmp/ck$i"
    "$tmp/nanobusd" -addr "127.0.0.1:$((CBASE+i))" -nbwp-addr "127.0.0.1:$((CBASE+3+i))" \
        -checkpoint-dir "$tmp/ck$i" \
        -cluster-self "n$i" -cluster-members "$MEMBERS" > "$tmp/node$i.out" 2>&1 &
    NPIDS="$NPIDS $!"
    i=$((i + 1))
done
i=1
while [ "$i" -le 3 ]; do
    ok=""
    for _ in $(seq 1 50); do
        grep -q "^nanobusd: nbwp on " "$tmp/node$i.out" && { ok=1; break; }
        sleep 0.1
    done
    [ -n "$ok" ] || { echo "bench_server: cluster node n$i never came up:" >&2; cat "$tmp/node$i.out" >&2; exit 1; }
    i=$((i + 1))
done

CLUSTER_RUNS="$tmp/cluster.ndjson"
: > "$CLUSTER_RUNS"
LPIDS=""
i=1
while [ "$i" -le 3 ]; do
    "$tmp/loadgen" -addr "http://127.0.0.1:$((CBASE+i))" \
        -transport nbwp -nbwp-addr "127.0.0.1:$((CBASE+3+i))" -pattern seq \
        -sessions "$GATE_SESSIONS" -batches "$GATE_BATCHES" -batch-words "$GATE_WORDS" \
        -window "$GATE_WINDOW" -conns "$GATE_CONNS" -json "$CLUSTER_RUNS" "$@" &
    LPIDS="$LPIDS $!"
    i=$((i + 1))
done
for p in $LPIDS; do
    wait "$p" || { echo "bench_server: cluster loadgen failed" >&2; exit 1; }
done
for p in $NPIDS; do
    kill "$p" 2>/dev/null || true
    wait "$p" || true
done
NPIDS=""

# Aggregate cluster rate: total words over the slowest driver's wall time
# (the three drivers start together, so that is the fleet's elapsed).
CLUSTER_WPS=$(awk '{
    if (match($0, /"words_total":[0-9]+/)) w += substr($0, RSTART + 14, RLENGTH - 14)
    if (match($0, /"elapsed_sec":[0-9.]+/)) { e = substr($0, RSTART + 14, RLENGTH - 14) + 0; if (e > emax) emax = e }
} END { if (emax > 0) printf "%.0f", w / emax; else print 0 }' "$CLUSTER_RUNS")

# Fold the gate legs: best rep per transport (max words/sec, min p99).
# Bench line: Name<TAB>words<TAB>NS ns/op<TAB>WPS words/s<TAB>P99 p99-ms
GATE=$(awk -v s="$GATE_SESSIONS" '
    $1 == "BenchmarkLoadgen/http_nbwp_seq_s" s "-1" {
        if ($5 > nwps) nwps = $5
        if (np99 == "" || $7 < np99) np99 = $7
    }
    $1 == "BenchmarkLoadgen/http_http_seq_s" s "-1" {
        if ($5 > hwps) hwps = $5
        if (hp99 == "" || $7 < hp99) hp99 = $7
    }
    END {
        if (nwps == "" || hwps == "") { print "MISSING"; exit }
        printf "%.0f %.0f %.2f %s %s", nwps, hwps, nwps / hwps, np99, hp99
    }' "$BENCH")
[ "$GATE" != "MISSING" ] || { echo "bench_server: gate legs missing from $BENCH" >&2; exit 1; }
NBWP_WPS=$(echo "$GATE" | cut -d' ' -f1)
HTTP_WPS=$(echo "$GATE" | cut -d' ' -f2)
RATIO=$(echo "$GATE" | cut -d' ' -f3)
NBWP_P99=$(echo "$GATE" | cut -d' ' -f4)
HTTP_P99=$(echo "$GATE" | cut -d' ' -f5)
CLUSTER_RATIO=$(awk -v c="$CLUSTER_WPS" -v s="$NBWP_WPS" 'BEGIN { printf "%.2f", c / s }')

# Assemble. The baseline block is a fixed record: the same benchmark and
# loadgen workload run at the commit before the batch/pooling work
# (per-word step loop, 512 KiB of decode buffers allocated per request).
{
    printf '{\n  "workload": {"sessions": %s, "batches": %s, "batch_words": %s, "encoding": "Unencoded", "node": "90nm", "interval_cycles": 1024},\n' \
        "$SESSIONS" "$BATCHES" "$WORDS"
    printf '  "baseline_pre_batch_pipeline": {\n'
    printf '    "ingest_handler": {"bench": "BenchmarkBinaryIngest", "words_per_request": 16384, "ns_per_op": 633889, "words_per_sec": 25846751, "bytes_per_op": 524306, "allocs_per_op": 2},\n'
    printf '    "runs": [\n'
    printf '      {"mode": "inproc", "pattern": "seq", "words_per_sec": 22243464, "step_p50_ms": 4.66, "gomaxprocs": 1},\n'
    printf '      {"mode": "inproc", "pattern": "address", "words_per_sec": 5748943.7, "step_p50_ms": 20.43, "gomaxprocs": 1},\n'
    printf '      {"mode": "inproc", "pattern": "random", "words_per_sec": 949947.4, "step_p50_ms": 136.44, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "seq", "words_per_sec": 20634120, "step_p50_ms": 0.62, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "address", "words_per_sec": 6388035, "step_p50_ms": 2.31, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "random", "words_per_sec": 1046105, "step_p50_ms": 146.85, "gomaxprocs": 1}\n'
    printf '    ]\n  },\n'
    printf '  "ingest_handler": {"bench": "BenchmarkBinaryIngest", "words_per_request": %s, "ns_per_op": %s, "words_per_sec": %s, "bytes_per_op": 0, "allocs_per_op": 0},\n' \
        "$WORDS" "$INGEST_NS" "$INGEST_WPS"
    printf '  "nbwp_gate": {"pattern": "seq", "sessions": %s, "batches": %s, "batch_words": %s, "window": %s, "conns": %s, "nbwp_words_per_sec": %s, "http_words_per_sec": %s, "ratio": %s, "nbwp_step_p99_ms": %s, "http_step_p99_ms": %s},\n' \
        "$GATE_SESSIONS" "$GATE_BATCHES" "$GATE_WORDS" "$GATE_WINDOW" "$GATE_CONNS" \
        "$NBWP_WPS" "$HTTP_WPS" "$RATIO" "$NBWP_P99" "$HTTP_P99"
    printf '  "cluster_gate": {"pattern": "seq", "nodes": 3, "sessions_per_node": %s, "batches": %s, "batch_words": %s, "window": %s, "conns": %s, "cores": %s, "cluster_words_per_sec": %s, "single_words_per_sec": %s, "ratio": %s},\n' \
        "$GATE_SESSIONS" "$GATE_BATCHES" "$GATE_WORDS" "$GATE_WINDOW" "$GATE_CONNS" \
        "$CORES" "$CLUSTER_WPS" "$NBWP_WPS" "$CLUSTER_RATIO"
    printf '  "cluster_runs": [\n'
    sed 's/^/    /; $ !s/$/,/' "$CLUSTER_RUNS"
    printf '  ],\n'
    printf '  "benchmarks": [\n'
    awk '
        /^BenchmarkLoadgen\// {
            name = $1
            procs = 1
            if (match(name, /-[0-9]+$/)) {
                procs = substr(name, RSTART + 1)
                name = substr(name, 1, RSTART - 1)
            }
            key = name "-" procs
            if (!(key in best) || $3 + 0 < best[key]) {
                best[key] = $3 + 0
                bname[key] = name
                bprocs[key] = procs
                if (!(key in seen)) { order[++n] = key; seen[key] = 1 }
            }
        }
        END {
            for (i = 1; i <= n; i++) {
                k = order[i]
                printf "    {\"name\": \"%s\", \"gomaxprocs\": %s, \"ns_per_op\": %s}%s\n",
                    bname[k], bprocs[k], best[k], (i < n ? "," : "")
            }
        }' "$BENCH"
    printf '  ],\n'
    printf '  "runs": [\n'
    sed 's/^/    /; $ !s/$/,/' "$RUNS"
    printf '  ]\n}\n'
} > "$OUT"

echo "wrote $OUT"
awk -v post="$INGEST_WPS" 'BEGIN { printf "binary ingest: %.0f words/sec vs 25846751 pre-pipeline (%.2fx)\n", post, post / 25846751 }'
echo "nbwp gate (seq, $GATE_SESSIONS sessions): $NBWP_WPS words/s vs http $HTTP_WPS (${RATIO}x), step p99 ${NBWP_P99}ms vs http ${HTTP_P99}ms"
awk -v r="$RATIO" -v p="$NBWP_P99" 'BEGIN {
    if (r < 2.0) { print "bench_server: FAIL: nbwp/http ratio " r " < 2.0" > "/dev/stderr"; exit 1 }
    if (p >= 1.0) { print "bench_server: FAIL: nbwp step p99 " p "ms >= 1ms" > "/dev/stderr"; exit 1 }
    print "bench_server: nbwp gate ok (>2x http, p99 <1ms)"
}'
echo "cluster gate (3 nodes x $GATE_SESSIONS sessions, $CORES cores): $CLUSTER_WPS words/s aggregate vs $NBWP_WPS single (${CLUSTER_RATIO}x)"
go run ./scripts/benchgate -baseline "$OUT" -cluster-gate

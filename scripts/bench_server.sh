#!/bin/sh
# Service throughput benchmark: measures the binary ingest path at two
# levels and records both in BENCH_server.json at the repo root.
#
#  - ingest_handler: BenchmarkBinaryIngest, the in-process handler cost
#    from request body to simulator (no sockets, no client). This is the
#    path the batch pipeline optimised, compared against the same
#    benchmark run at the pre-batch-pipeline commit.
#  - runs: scripts/loadgen end to end — in-process (httptest listener)
#    and over real HTTP against an exec'd daemon — for the seq
#    (ingest-stress), address (bus regime) and random (memo-hostile)
#    patterns. End-to-end numbers include client CPU and the network
#    stack, which share one core with the daemon on small machines.
#
# Usage: scripts/bench_server.sh [extra loadgen args, e.g. -sessions 4]
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_server.json
SESSIONS=8
BATCHES=24
WORDS=16384

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true' EXIT

go build -o "$tmp/loadgen" ./scripts/loadgen
go build -o "$tmp/nanobusd" ./cmd/nanobusd

# Handler-level ingest benchmark: min ns/op of 3 runs.
go test -run NONE -bench BenchmarkBinaryIngest -benchmem -count 3 \
    ./internal/server | tee "$tmp/ingest.txt"
INGEST_NS=$(awk '/^BenchmarkBinaryIngest/ { if (best == "" || $3 < best) best = $3 } END { print best }' "$tmp/ingest.txt")
INGEST_WPS=$(awk -v ns="$INGEST_NS" -v w="$WORDS" 'BEGIN { printf "%.0f", w / (ns / 1e9) }')

RUNS="$tmp/runs.ndjson"
: > "$RUNS"

for pattern in seq address random; do
    "$tmp/loadgen" -inproc -pattern "$pattern" \
        -sessions "$SESSIONS" -batches "$BATCHES" -batch-words "$WORDS" \
        -json "$RUNS" "$@"
done

# Real daemon on an ephemeral port; the bound address is printed on the
# first stdout line ("nanobusd: listening on 127.0.0.1:PORT").
"$tmp/nanobusd" -addr 127.0.0.1:0 > "$tmp/nanobusd.out" 2>&1 &
DPID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/^nanobusd: listening on /{print $4; exit}' "$tmp/nanobusd.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "bench_server: daemon never reported an address" >&2; exit 1; }

for pattern in seq address random; do
    "$tmp/loadgen" -addr "http://$ADDR" -pattern "$pattern" \
        -sessions "$SESSIONS" -batches "$BATCHES" -batch-words "$WORDS" \
        -json "$RUNS" "$@"
done

kill "$DPID"
wait "$DPID" || true
DPID=""

# Assemble. The baseline block is a fixed record: the same benchmark and
# loadgen workload run at the commit before the batch/pooling work
# (per-word step loop, 512 KiB of decode buffers allocated per request).
{
    printf '{\n  "workload": {"sessions": %s, "batches": %s, "batch_words": %s, "encoding": "Unencoded", "node": "90nm", "interval_cycles": 1024},\n' \
        "$SESSIONS" "$BATCHES" "$WORDS"
    printf '  "baseline_pre_batch_pipeline": {\n'
    printf '    "ingest_handler": {"bench": "BenchmarkBinaryIngest", "words_per_request": 16384, "ns_per_op": 633889, "words_per_sec": 25846751, "bytes_per_op": 524306, "allocs_per_op": 2},\n'
    printf '    "runs": [\n'
    printf '      {"mode": "inproc", "pattern": "seq", "words_per_sec": 22243464, "step_p50_ms": 4.66, "gomaxprocs": 1},\n'
    printf '      {"mode": "inproc", "pattern": "address", "words_per_sec": 5748943.7, "step_p50_ms": 20.43, "gomaxprocs": 1},\n'
    printf '      {"mode": "inproc", "pattern": "random", "words_per_sec": 949947.4, "step_p50_ms": 136.44, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "seq", "words_per_sec": 20634120, "step_p50_ms": 0.62, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "address", "words_per_sec": 6388035, "step_p50_ms": 2.31, "gomaxprocs": 1},\n'
    printf '      {"mode": "http", "pattern": "random", "words_per_sec": 1046105, "step_p50_ms": 146.85, "gomaxprocs": 1}\n'
    printf '    ]\n  },\n'
    printf '  "ingest_handler": {"bench": "BenchmarkBinaryIngest", "words_per_request": %s, "ns_per_op": %s, "words_per_sec": %s, "bytes_per_op": 0, "allocs_per_op": 0},\n' \
        "$WORDS" "$INGEST_NS" "$INGEST_WPS"
    printf '  "runs": [\n'
    sed 's/^/    /; $ !s/$/,/' "$RUNS"
    printf '  ]\n}\n'
} > "$OUT"

echo "wrote $OUT"
awk -v post="$INGEST_WPS" 'BEGIN { printf "binary ingest: %.0f words/sec vs 25846751 pre-pipeline (%.2fx)\n", post, post / 25846751 }'

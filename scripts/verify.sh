#!/bin/sh
# Full local gate: build, vet, nanolint, race-enabled tests (which include
# the AllocsPerRun zero-alloc gates in core, energy, server and expt), and
# a benchmark smoke gated against the recorded baseline: benchgate fails
# the run when any kernel is more than 2x slower than BENCH_hotpath.json.
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/nanolint ./...
go test -race ./...

# Fast kernels: 100 iterations, min of 3 runs to damp scheduler noise.
go test -run NONE \
    -bench 'BenchmarkThermalAdvance|BenchmarkBinaryIngest|BenchmarkStreamSampleEncode' \
    -benchmem -benchtime 100x -count 3 . ./internal/server |
    go run ./scripts/benchgate -baseline BENCH_hotpath.json
# Memo-warmed kernels need enough iterations to reach their steady-state
# hit rate (the baseline regime); 100x would gate against a cold cache.
go test -run NONE \
    -bench 'BenchmarkTransition|BenchmarkRunPair|BenchmarkStepBatch' \
    -benchmem -benchtime 100000x -count 3 . |
    go run ./scripts/benchgate -baseline BENCH_hotpath.json
# Whole-sweep benchmarks run ~0.5 s/op, so one iteration is already stable.
go test -run NONE -bench 'BenchmarkSweepWorkers' -benchmem -benchtime 1x . |
    go run ./scripts/benchgate -baseline BENCH_hotpath.json

# nanobusd end-to-end smoke: exec the real daemon on an ephemeral port,
# drive one session through the client, require bit-identical results vs
# the in-process library, then SIGTERM and require a clean drain.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/nanobusd" ./cmd/nanobusd
go run ./scripts/nanobusd_smoke -bin "$tmp/nanobusd"

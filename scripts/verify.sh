#!/bin/sh
# Full local gate: build, vet, nanolint, race-enabled tests, and a one-shot
# smoke of the hot-path benchmarks (catches bitrot in bench-only code).
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -eux
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/nanolint ./...
go test -race ./...
go test -run NONE -bench 'BenchmarkTransition|BenchmarkThermalAdvance|BenchmarkRunPair|BenchmarkSweepWorkers' -benchtime 1x .

# nanobusd end-to-end smoke: exec the real daemon on an ephemeral port,
# drive one session through the client, require bit-identical results vs
# the in-process library, then SIGTERM and require a clean drain.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/nanobusd" ./cmd/nanobusd
go run ./scripts/nanobusd_smoke -bin "$tmp/nanobusd"

#!/bin/sh
# Full local/CI gate: build, vet, nanolint, race-enabled tests (which
# include the AllocsPerRun zero-alloc gates in core, energy, server and
# expt), the ratcheted coverage minimum, a benchmark smoke gated against
# the recorded baseline (benchgate fails the run when any kernel is more
# than 2x slower than BENCH_hotpath.json), the nanobusd end-to-end smoke,
# the adaptive cooling-code gate, and the kill -9 durability chaos gate.
#
# CI-safe by construction: no interactive input, no TTY assumptions, and
# every stage's exit status stops the run. Benchmark output goes through
# a temp file instead of a pipeline because POSIX sh `set -e` does not
# propagate the left side of a pipe — `go test | benchgate` would report
# only benchgate's status and silently swallow a test failure.
# Usage: scripts/verify.sh  (from anywhere inside the repo)
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "==> build"
go build ./...
echo "==> build (nanobus_nofault)"
go build -tags nanobus_nofault ./...
echo "==> vet"
go vet ./...
echo "==> nanolint (ratcheted)"
# The baseline records tolerated debt per file+rule; -ratchet fails the
# run if the repo has MORE findings than recorded (a regression) or FEWER
# (the baseline went slack — tighten it with -write-baseline so fixed
# debt cannot silently come back). The SARIF log is CI's code-scanning
# upload; locally it lands in the temp dir and is discarded.
go run ./cmd/nanolint -baseline .nanolint-baseline.json -ratchet -sarif "$tmp/nanolint.sarif" ./...
echo "==> race tests"
go test -race ./...

echo "==> coverage gate"
go test -count=1 -coverprofile "$tmp/coverage.out" ./...
go run ./scripts/covergate -profile "$tmp/coverage.out" -min 82.1

echo "==> benchmark gates"
# Fast kernels: 100 iterations, min of 3 runs to damp scheduler noise.
go test -run NONE \
    -bench 'BenchmarkThermalAdvance|BenchmarkBinaryIngest|BenchmarkStreamSampleEncode' \
    -benchmem -benchtime 100x -count 3 . ./internal/server > "$tmp/bench_fast.txt"
go run ./scripts/benchgate -baseline BENCH_hotpath.json < "$tmp/bench_fast.txt"
# Memo-warmed kernels need enough iterations to reach their steady-state
# hit rate (the baseline regime); 100x would gate against a cold cache.
go test -run NONE \
    -bench 'BenchmarkTransition|BenchmarkRunPair|BenchmarkStepBatch|BenchmarkMultiStep|BenchmarkCoolingStep' \
    -benchmem -benchtime 100000x -count 3 . > "$tmp/bench_warm.txt"
go run ./scripts/benchgate -baseline BENCH_hotpath.json < "$tmp/bench_warm.txt"
# Whole-sweep benchmarks run ~0.5 s/op, so one iteration is already stable.
go test -run NONE -bench 'BenchmarkSweepWorkers' -benchmem -benchtime 1x . > "$tmp/bench_sweep.txt"
go run ./scripts/benchgate -baseline BENCH_hotpath.json < "$tmp/bench_sweep.txt"
# Per-bus scaling gate: the committed baseline's paired K16-vs-K1 record
# must show the batch kernel at >= 2x per-bus throughput over scalar.
go run ./scripts/benchgate -baseline BENCH_hotpath.json -multi-gate

echo "==> nanobusd smoke"
# End-to-end: exec the real daemon on an ephemeral port, drive one
# session through the client, require bit-identical results vs the
# in-process library, then SIGTERM and require a clean drain.
go build -o "$tmp/nanobusd" ./cmd/nanobusd
go run ./scripts/nanobusd_smoke -bin "$tmp/nanobusd"

echo "==> adaptive gate"
# Cooling-code controller: the self-calibrated ceiling must be defended
# on every sample (while static BI exceeds it) at <= 15% bandwidth
# overhead, and the switch schedule must reproduce bit-identically across
# re-runs and across HTTP and NBWP against the exec'd daemon.
go run ./scripts/adaptive_gate -bin "$tmp/nanobusd"

echo "==> durability chaos"
# kill -9 mid-stream, restart on the shared checkpoint directory with an
# ingest failpoint armed, resurrect, replay, and require bit-identical
# final figures vs an uninterrupted library run.
go run ./scripts/chaos -bin "$tmp/nanobusd"

echo "verify: PASS"

// Command loadgen drives a nanobusd with concurrent streaming sessions and
// reports aggregate throughput and per-request latency percentiles. It is
// the tuning/soak tool and the BENCH_server.json driver
// (scripts/bench_server.sh); scripts/nanobusd_smoke remains the
// correctness gate.
//
//	nanobusd -addr 127.0.0.1:8080 &
//	go run ./scripts/loadgen -addr http://127.0.0.1:8080 -sessions 64 -batches 32 -batch-words 4096
//
// With -inproc the service runs inside the loadgen process on an
// httptest listener (no network stack between driver and handler), which
// isolates the ingest-path cost from kernel socket overhead. With -json
// the run's summary is appended as one JSON object to the given file.
// Any failed request makes the process exit non-zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nanobus/client"
	"nanobus/internal/server"
)

// result is the machine-readable summary written by -json.
type result struct {
	Mode        string  `json:"mode"` // "http" or "inproc"
	Pattern     string  `json:"pattern"`
	Sessions    int     `json:"sessions"`
	Batches     int     `json:"batches"`
	BatchWords  int     `json:"batch_words"`
	Node        string  `json:"node"`
	Encoding    string  `json:"encoding"`
	Interval    uint64  `json:"interval_cycles"`
	Words       uint64  `json:"words_total"`
	Samples     uint64  `json:"samples_total"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	WordsPerSec float64 `json:"words_per_sec"`
	P50Ms       float64 `json:"step_p50_ms"`
	P95Ms       float64 `json:"step_p95_ms"`
	P99Ms       float64 `json:"step_p99_ms"`
	Failures    uint64  `json:"failures"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "nanobusd base URL")
	inproc := flag.Bool("inproc", false, "serve in-process on an httptest listener instead of dialing -addr")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	batches := flag.Int("batches", 16, "binary batches per session")
	batchWords := flag.Int("batch-words", 4096, "words per batch")
	node := flag.String("node", "90nm", "technology node")
	scheme := flag.String("encoding", "Unencoded", "encoding scheme")
	interval := flag.Uint64("interval", 1024, "sampling interval in cycles")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	pattern := flag.String("pattern", "address", "word pattern: address (sequential runs with jumps and holds, the bus regime), seq (pure sequential, ingest-path stress) or random")
	jsonOut := flag.String("json", "", "append the run summary as one JSON object to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()
	if *pattern != "address" && *pattern != "seq" && *pattern != "random" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -pattern %q (want address, seq or random)\n", *pattern)
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	mode := "http"
	base := *addr
	if *inproc {
		mode = "inproc"
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		defer ts.Close()
		base = ts.URL
	}
	c := client.New(base)
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: service not healthy at %s: %v\n", base, err)
		os.Exit(1)
	}

	var (
		wg         sync.WaitGroup
		totalWords atomic.Uint64
		samples    atomic.Uint64
		failures   atomic.Uint64
	)
	// Per-session step latencies, merged after the run (each slice is
	// owned by one goroutine, so no locking on the hot path).
	perSession := make([][]time.Duration, *sessions)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			lat, err := drive(ctx, c, uint32(idx+1), *node, *scheme, *pattern, *interval, *batches, *batchWords,
				&totalWords, &samples)
			perSession[idx] = lat
			if err != nil {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: session %d: %v\n", idx+1, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range perSession {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	words := totalWords.Load()
	res := result{
		Mode: mode, Pattern: *pattern,
		Sessions: *sessions, Batches: *batches, BatchWords: *batchWords,
		Node: *node, Encoding: *scheme, Interval: *interval,
		Words: words, Samples: samples.Load(),
		ElapsedSec:  elapsed.Seconds(),
		WordsPerSec: float64(words) / elapsed.Seconds(),
		P50Ms:       percentileMs(all, 0.50),
		P95Ms:       percentileMs(all, 0.95),
		P99Ms:       percentileMs(all, 0.99),
		Failures:    failures.Load(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	fmt.Printf("loadgen: %s: %d sessions x %d batches x %d words in %v\n",
		mode, *sessions, *batches, *batchWords, elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: %d words total, %.0f words/sec, %d samples, %d failed sessions\n",
		words, res.WordsPerSec, res.Samples, res.Failures)
	fmt.Printf("loadgen: step latency p50 %.3fms p95 %.3fms p99 %.3fms over %d requests\n",
		res.P50Ms, res.P95Ms, res.P99Ms, len(all))
	if *jsonOut != "" {
		if err := appendJSON(*jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

// percentileMs returns the p-quantile of the sorted durations in
// milliseconds (nearest-rank; 0 for an empty set).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// appendJSON appends one compact JSON line to path (NDJSON, so repeated
// runs accumulate and bench_server.sh can slurp them).
func appendJSON(path string, v any) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr close after successful sync-less append; the write error below is the signal
		_ = f.Close()
	}()
	return json.NewEncoder(f).Encode(v)
}

// fillWords writes the next batch of words for the pattern, advancing the
// LCG state x. The address pattern mirrors the hot-path benchmark's
// regime: mostly sequential word-addresses with occasional far jumps and
// holds, which is what an address bus actually carries; random is the
// memo-hostile worst case.
func fillWords(words []uint32, pattern string, x, addr uint32) (uint32, uint32) {
	if pattern == "random" {
		for i := range words {
			x = x*1664525 + 1013904223
			words[i] = x
		}
		return x, addr
	}
	if pattern == "seq" {
		// Pure sequential word-addresses: near-total memo hits, so the
		// simulation kernel is cheap and the run measures the ingest
		// path (decode, session plumbing, response encode) instead.
		for i := range words {
			addr += 4
			words[i] = addr
		}
		return x, addr
	}
	for i := range words {
		x = x*1664525 + 1013904223
		switch x % 10 {
		case 0:
			addr = x * 2654435761 // far jump
		case 1:
			// hold
		default:
			addr += 4
		}
		words[i] = addr
	}
	return x, addr
}

// drive runs one session: create, stream binary batches, fetch the result,
// close. It returns the per-request step latencies (one per batch).
func drive(ctx context.Context, c *client.Client, seed uint32, node, scheme, pattern string,
	interval uint64, batches, batchWords int, totalWords, samples *atomic.Uint64) ([]time.Duration, error) {
	sess, err := c.CreateSession(ctx, client.SessionConfig{
		Node:           node,
		Encoding:       scheme,
		IntervalCycles: interval,
		DropSamples:    true, // soak sessions retain nothing server-side
	})
	if err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort cleanup; the run already reported its outcome
		_ = sess.Close(context.WithoutCancel(ctx))
	}()

	lat := make([]time.Duration, 0, batches)
	words := make([]uint32, batchWords)
	x, addr := seed, uint32(0x4000_1000)
	for b := 0; b < batches; b++ {
		x, addr = fillWords(words, pattern, x, addr)
		t0 := time.Now()
		sum, err := sess.StepBinary(ctx, words)
		lat = append(lat, time.Since(t0))
		if err != nil {
			return lat, fmt.Errorf("batch %d: %w", b, err)
		}
		totalWords.Add(sum.Words)
		samples.Add(sum.Samples)
	}
	if _, err := sess.Result(ctx, true); err != nil {
		return lat, fmt.Errorf("result: %w", err)
	}
	return lat, nil
}

// Command loadgen drives a nanobusd with concurrent streaming sessions and
// reports aggregate throughput and per-request latency percentiles. It is
// the tuning/soak tool and the BENCH_server.json driver
// (scripts/bench_server.sh); scripts/nanobusd_smoke remains the
// correctness gate.
//
//	nanobusd -addr 127.0.0.1:8080 &
//	go run ./scripts/loadgen -addr http://127.0.0.1:8080 -sessions 64 -batches 32 -batch-words 4096
//
// With -inproc the service runs inside the loadgen process on an
// httptest listener (no network stack between driver and handler), which
// isolates the ingest-path cost from kernel socket overhead. With -json
// the run's summary is appended as one JSON object to the given file.
// Any failed request makes the process exit non-zero.
//
// -transport nbwp drives the same workload over the persistent framed
// binary protocol (internal/nbwp): sessions are multiplexed over a small
// pool of TCP connections (-conns) and each session keeps -window
// sequenced STEP frames in flight before waiting on the oldest ack, so
// the ingest path never stalls on a per-request round trip:
//
//	nanobusd -addr 127.0.0.1:8080 -nbwp-addr 127.0.0.1:8081 &
//	go run ./scripts/loadgen -transport nbwp -nbwp-addr 127.0.0.1:8081 \
//	    -sessions 64 -pattern seq
//
// -bench-out appends one `go test -bench`-format line per run
// (ns/op = wall nanoseconds per simulated word), which is what
// scripts/benchgate consumes to gate throughput regressions in CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nanobus/client"
	"nanobus/internal/server"
)

// result is the machine-readable summary written by -json.
type result struct {
	Mode        string  `json:"mode"`      // "http" or "inproc"
	Transport   string  `json:"transport"` // "http" or "nbwp"
	Pattern     string  `json:"pattern"`
	Sessions    int     `json:"sessions"`
	Conns       int     `json:"conns,omitempty"`  // NBWP connections (nbwp only)
	Window      int     `json:"window,omitempty"` // pipelined frames per session (nbwp only)
	Batches     int     `json:"batches"`
	BatchWords  int     `json:"batch_words"`
	Node        string  `json:"node"`
	Encoding    string  `json:"encoding"`
	Interval    uint64  `json:"interval_cycles"`
	Words       uint64  `json:"words_total"`
	Samples     uint64  `json:"samples_total"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	WordsPerSec float64 `json:"words_per_sec"`
	P50Ms       float64 `json:"step_p50_ms"`
	P95Ms       float64 `json:"step_p95_ms"`
	P99Ms       float64 `json:"step_p99_ms"`
	Failures    uint64  `json:"failures"`
	GoMaxProcs  int     `json:"gomaxprocs"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "nanobusd base URL")
	transport := flag.String("transport", "http", "wire transport: http (v1 REST) or nbwp (persistent framed binary)")
	nbwpAddr := flag.String("nbwp-addr", "127.0.0.1:8081", "nanobusd NBWP address (host:port) for -transport nbwp")
	conns := flag.Int("conns", 0, "NBWP connections to multiplex sessions over (0 = one per 8 sessions)")
	window := flag.Int("window", 8, "pipelined STEP frames in flight per NBWP session")
	inproc := flag.Bool("inproc", false, "serve in-process on an httptest listener instead of dialing -addr")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	batches := flag.Int("batches", 16, "binary batches per session")
	batchWords := flag.Int("batch-words", 4096, "words per batch")
	node := flag.String("node", "90nm", "technology node")
	scheme := flag.String("encoding", "Unencoded", "encoding scheme")
	interval := flag.Uint64("interval", 1024, "sampling interval in cycles")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	pattern := flag.String("pattern", "address", "word pattern: address (sequential runs with jumps and holds, the bus regime), seq (pure sequential, ingest-path stress) or random")
	jsonOut := flag.String("json", "", "append the run summary as one JSON object to this file")
	benchOut := flag.String("bench-out", "", "append a `go test -bench`-format line (ns/op per word) to this file for scripts/benchgate")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()
	if *pattern != "address" && *pattern != "seq" && *pattern != "random" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -pattern %q (want address, seq or random)\n", *pattern)
		os.Exit(2)
	}
	if *transport != "http" && *transport != "nbwp" {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -transport %q (want http or nbwp)\n", *transport)
		os.Exit(2)
	}
	if *window < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -window must be >= 1")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	mode := "http"
	base := *addr
	nbwpTarget := *nbwpAddr
	if *inproc {
		mode = "inproc"
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		if *transport == "nbwp" {
			nln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: nbwp listen: %v\n", err)
				os.Exit(1)
			}
			go func() {
				//nanolint:ignore droppederr the accept loop ends when the process exits
				_ = srv.ServeNBWP(nln)
			}()
			nbwpTarget = nln.Addr().String()
		}
	}

	// One NBWP connection per 8 sessions by default: enough parallelism
	// to spread the per-connection serve goroutine across cores while
	// still exercising slot multiplexing.
	var pool []*client.NBWPConn
	if *transport == "nbwp" {
		n := *conns
		if n <= 0 {
			n = (*sessions + 7) / 8
		}
		if n > *sessions {
			n = *sessions
		}
		for i := 0; i < n; i++ {
			nc, err := client.DialNBWP(ctx, nbwpTarget)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: dial nbwp %s: %v\n", nbwpTarget, err)
				os.Exit(1)
			}
			defer nc.Close()
			pool = append(pool, nc)
		}
	} else {
		*window, *conns = 0, 0
	}

	c := client.New(base)
	if *transport == "http" {
		if err := c.Healthz(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: service not healthy at %s: %v\n", base, err)
			os.Exit(1)
		}
	}

	var (
		wg         sync.WaitGroup
		totalWords atomic.Uint64
		samples    atomic.Uint64
		failures   atomic.Uint64
	)
	// Per-driver step latencies, merged after the run (each slice is
	// owned by one goroutine, so no locking on the hot path). HTTP is a
	// synchronous protocol, so it takes one goroutine per session;
	// NBWP pipelines, so one driver per connection carries its whole
	// session group.
	var perDriver [][]time.Duration
	start := time.Now()
	if *transport == "nbwp" {
		perDriver = make([][]time.Duration, len(pool))
		next := 0
		for d := range pool {
			group := (*sessions - next) / (len(pool) - d)
			first := next
			next += group
			wg.Add(1)
			go func(d, first, group int) {
				defer wg.Done()
				lat, err := driveNBWPGroup(ctx, pool[d], uint32(first+1), group, *node, *scheme, *pattern,
					*interval, *batches, *batchWords, *window, &totalWords, &samples)
				perDriver[d] = lat
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: conn %d: %v\n", d, err)
				}
			}(d, first, group)
		}
	} else {
		perDriver = make([][]time.Duration, *sessions)
		for i := 0; i < *sessions; i++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				lat, err := drive(ctx, c, uint32(idx+1), *node, *scheme, *pattern, *interval, *batches, *batchWords,
					&totalWords, &samples)
				perDriver[idx] = lat
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: session %d: %v\n", idx+1, err)
				}
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lat := range perDriver {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	words := totalWords.Load()
	res := result{
		Mode: mode, Transport: *transport, Pattern: *pattern,
		Sessions: *sessions, Conns: len(pool), Window: *window,
		Batches: *batches, BatchWords: *batchWords,
		Node: *node, Encoding: *scheme, Interval: *interval,
		Words: words, Samples: samples.Load(),
		ElapsedSec:  elapsed.Seconds(),
		WordsPerSec: float64(words) / elapsed.Seconds(),
		P50Ms:       percentileMs(all, 0.50),
		P95Ms:       percentileMs(all, 0.95),
		P99Ms:       percentileMs(all, 0.99),
		Failures:    failures.Load(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	fmt.Printf("loadgen: %s/%s: %d sessions x %d batches x %d words in %v\n",
		mode, *transport, *sessions, *batches, *batchWords, elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: %d words total, %.0f words/sec, %d samples, %d failed sessions\n",
		words, res.WordsPerSec, res.Samples, res.Failures)
	fmt.Printf("loadgen: step latency p50 %.3fms p95 %.3fms p99 %.3fms over %d requests\n",
		res.P50Ms, res.P95Ms, res.P99Ms, len(all))
	if *jsonOut != "" {
		if err := appendJSON(*jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
	if *benchOut != "" {
		if err := appendBenchLine(*benchOut, res, elapsed); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *benchOut, err)
			os.Exit(1)
		}
	}
	if res.Failures > 0 {
		os.Exit(1)
	}
}

// appendBenchLine writes the run as one `go test -bench`-format line so
// scripts/benchgate can compare it against a recorded baseline. The op
// is one simulated word: ns/op = wall time / words, which makes the
// gate a direct throughput ratio.
func appendBenchLine(path string, res result, elapsed time.Duration) error {
	name := fmt.Sprintf("BenchmarkLoadgen/%s_%s_%s_s%d-%d",
		res.Mode, res.Transport, res.Pattern, res.Sessions, res.GoMaxProcs)
	if res.Words == 0 {
		return fmt.Errorf("no words simulated")
	}
	nsPerWord := float64(elapsed.Nanoseconds()) / float64(res.Words)
	line := fmt.Sprintf("%s\t%d\t%.2f ns/op\t%.0f words/s\t%.3f p99-ms\n",
		name, res.Words, nsPerWord, res.WordsPerSec, res.P99Ms)
	fmt.Print(line)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr close after append; the write error below is the signal
		_ = f.Close()
	}()
	_, err = io.WriteString(f, line)
	return err
}

// percentileMs returns the p-quantile of the sorted durations in
// milliseconds (nearest-rank; 0 for an empty set).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// appendJSON appends one compact JSON line to path (NDJSON, so repeated
// runs accumulate and bench_server.sh can slurp them).
func appendJSON(path string, v any) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		//nanolint:ignore droppederr close after successful sync-less append; the write error below is the signal
		_ = f.Close()
	}()
	return json.NewEncoder(f).Encode(v)
}

// fillWords writes the next batch of words for the pattern, advancing the
// LCG state x. The address pattern mirrors the hot-path benchmark's
// regime: mostly sequential word-addresses with occasional far jumps and
// holds, which is what an address bus actually carries; random is the
// memo-hostile worst case.
func fillWords(words []uint32, pattern string, x, addr uint32) (uint32, uint32) {
	if pattern == "random" {
		for i := range words {
			x = x*1664525 + 1013904223
			words[i] = x
		}
		return x, addr
	}
	if pattern == "seq" {
		// Pure sequential word-addresses: near-total memo hits, so the
		// simulation kernel is cheap and the run measures the ingest
		// path (decode, session plumbing, response encode) instead.
		for i := range words {
			addr += 4
			words[i] = addr
		}
		return x, addr
	}
	for i := range words {
		x = x*1664525 + 1013904223
		switch x % 10 {
		case 0:
			addr = x * 2654435761 // far jump
		case 1:
			// hold
		default:
			addr += 4
		}
		words[i] = addr
	}
	return x, addr
}

// drive runs one session through the transport-agnostic interface:
// create, stream binary batches, fetch the result, close. It returns the
// per-request step latencies (one per batch).
func drive(ctx context.Context, tr client.Transport, seed uint32, node, scheme, pattern string,
	interval uint64, batches, batchWords int, totalWords, samples *atomic.Uint64) ([]time.Duration, error) {
	sess, err := tr.OpenSession(ctx, client.SessionConfig{
		Node:           node,
		Encoding:       scheme,
		IntervalCycles: interval,
		DropSamples:    true, // soak sessions retain nothing server-side
	})
	if err != nil {
		return nil, fmt.Errorf("create: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort cleanup; the run already reported its outcome
		_ = sess.Close(context.WithoutCancel(ctx))
	}()

	lat := make([]time.Duration, 0, batches)
	words := make([]uint32, batchWords)
	x, addr := seed, uint32(0x4000_1000)
	for b := 0; b < batches; b++ {
		x, addr = fillWords(words, pattern, x, addr)
		t0 := time.Now()
		sum, err := sess.StepBinary(ctx, words)
		lat = append(lat, time.Since(t0))
		if err != nil {
			return lat, fmt.Errorf("batch %d: %w", b, err)
		}
		totalWords.Add(sum.Words)
		samples.Add(sum.Samples)
	}
	if _, err := sess.Result(ctx, true); err != nil {
		return lat, fmt.Errorf("result: %w", err)
	}
	return lat, nil
}

// driveNBWPGroup drives a group of sessions multiplexed over one NBWP
// connection from a single goroutine — the pipelined-ack pattern the
// protocol exists for. Sequenced STEP frames interleave round-robin
// across the group's sessions with up to window frames in flight; when
// the window is full the oldest ack is settled before the next send.
// One driver goroutine per connection (instead of one blocked goroutine
// per session, as the synchronous HTTP path needs) keeps the
// runnable-goroutine count flat, so measured latency is protocol and
// service time rather than scheduler queueing. Latency is send-to-ack
// per frame and includes waiting behind the up-to-window-1 frames ahead
// of it in the pipe. Sessions come from the Transport interface and the
// pipelined sends go through the PipelinedSession capability assertion,
// so this driver works on any transport that can pipeline.
func driveNBWPGroup(ctx context.Context, tr client.Transport, firstSeed uint32, group int,
	node, scheme, pattern string, interval uint64, batches, batchWords, window int,
	totalWords, samples *atomic.Uint64) ([]time.Duration, error) {
	cfg := client.SessionConfig{
		Node:           node,
		Encoding:       scheme,
		IntervalCycles: interval,
		DropSamples:    true,
	}
	sess := make([]client.PipelinedSession, group)
	for i := range sess {
		s, err := tr.OpenSession(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("open %d: %w", i, err)
		}
		defer func() {
			//nanolint:ignore droppederr best-effort cleanup; the run already reported its outcome
			_ = s.Close(context.WithoutCancel(ctx))
		}()
		ps, ok := s.(client.PipelinedSession)
		if !ok {
			return nil, fmt.Errorf("session %d: transport %T cannot pipeline", i, tr)
		}
		sess[i] = ps
	}

	type inflight struct {
		sp *client.StepPending
		t0 time.Time
	}
	lat := make([]time.Duration, 0, group*batches)
	// Sliding window of in-flight frames (circular FIFO: acks arrive in
	// send order). Settling the oldest flushes the writer, so the pipe
	// always carries up to window frames.
	ring := make([]inflight, window)
	head, count := 0, 0
	settle := func() error {
		f := ring[head]
		head = (head + 1) % window
		count--
		sum, err := f.sp.Wait(ctx)
		lat = append(lat, time.Since(f.t0))
		if err != nil {
			return err
		}
		totalWords.Add(sum.Words)
		samples.Add(sum.Samples)
		return nil
	}

	// Per-session generator state so each session's word stream matches
	// what the one-goroutine-per-session HTTP driver would produce.
	words := make([]uint32, batchWords)
	x := make([]uint32, group)
	addr := make([]uint32, group)
	for i := range x {
		x[i], addr[i] = firstSeed+uint32(i), 0x4000_1000
	}
	// Frames interleave round-robin across the group's sessions, so the
	// window bounds outstanding work per connection, not per session.
	for b := 0; b < batches; b++ {
		for i, s := range sess {
			if count == window {
				if err := settle(); err != nil {
					return lat, fmt.Errorf("batch %d: %w", b, err)
				}
			}
			// SendStepSeq encodes words into the frame before returning,
			// so the buffer is free for the next fill immediately.
			x[i], addr[i] = fillWords(words, pattern, x[i], addr[i])
			sp, err := s.SendStepSeq(uint64(b+1), words)
			if err != nil {
				return lat, fmt.Errorf("session %d batch %d send: %w", i, b, err)
			}
			ring[(head+count)%window] = inflight{sp: sp, t0: time.Now()}
			count++
		}
	}
	for count > 0 {
		if err := settle(); err != nil {
			return lat, err
		}
	}
	for i, s := range sess {
		if _, err := s.Result(ctx, true); err != nil {
			return lat, fmt.Errorf("session %d result: %w", i, err)
		}
	}
	return lat, nil
}

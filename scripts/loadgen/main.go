// Command loadgen drives a running nanobusd with concurrent streaming
// sessions and reports aggregate throughput. It is a tuning/soak tool,
// not a correctness gate (scripts/nanobusd_smoke is the gate).
//
//	nanobusd -addr 127.0.0.1:8080 &
//	go run ./scripts/loadgen -addr http://127.0.0.1:8080 -sessions 64 -batches 32 -batch-words 4096
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nanobus/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "nanobusd base URL")
	sessions := flag.Int("sessions", 16, "concurrent sessions")
	batches := flag.Int("batches", 16, "binary batches per session")
	batchWords := flag.Int("batch-words", 4096, "words per batch")
	node := flag.String("node", "90nm", "technology node")
	scheme := flag.String("encoding", "Unencoded", "encoding scheme")
	interval := flag.Uint64("interval", 1024, "sampling interval in cycles")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*addr)
	if err := c.Healthz(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: service not healthy at %s: %v\n", *addr, err)
		os.Exit(1)
	}

	var (
		wg         sync.WaitGroup
		totalWords atomic.Uint64
		samples    atomic.Uint64
		failures   atomic.Uint64
	)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			if err := drive(ctx, c, seed, *node, *scheme, *interval, *batches, *batchWords,
				&totalWords, &samples); err != nil {
				failures.Add(1)
				fmt.Fprintf(os.Stderr, "loadgen: session %d: %v\n", seed, err)
			}
		}(uint32(i + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)

	words := totalWords.Load()
	fmt.Printf("loadgen: %d sessions x %d batches x %d words in %v\n",
		*sessions, *batches, *batchWords, elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: %d words total, %.0f words/sec, %d samples, %d failed sessions\n",
		words, float64(words)/elapsed.Seconds(), samples.Load(), failures.Load())
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

func drive(ctx context.Context, c *client.Client, seed uint32, node, scheme string,
	interval uint64, batches, batchWords int, totalWords, samples *atomic.Uint64) error {
	sess, err := c.CreateSession(ctx, client.SessionConfig{
		Node:           node,
		Encoding:       scheme,
		IntervalCycles: interval,
		DropSamples:    true, // soak sessions retain nothing server-side
	})
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	defer func() {
		//nanolint:ignore droppederr best-effort cleanup; the run already reported its outcome
		_ = sess.Close(context.WithoutCancel(ctx))
	}()

	words := make([]uint32, batchWords)
	x := seed
	for b := 0; b < batches; b++ {
		for i := range words {
			x = x*1664525 + 1013904223
			words[i] = x
		}
		sum, err := sess.StepBinary(ctx, words)
		if err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		totalWords.Add(sum.Words)
		samples.Add(sum.Samples)
	}
	if _, err := sess.Result(ctx, true); err != nil {
		return fmt.Errorf("result: %w", err)
	}
	return nil
}

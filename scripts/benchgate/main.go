// Command benchgate compares `go test -bench` output (read from stdin)
// against the recorded baseline in BENCH_hotpath.json and exits non-zero
// when any benchmark has regressed beyond the allowed ratio.
//
//	go test -run NONE -bench X -benchmem -benchtime 100x -count 3 . |
//	    go run ./scripts/benchgate -baseline BENCH_hotpath.json
//
// Multiple runs of the same benchmark (from -count N) are folded by
// taking the minimum ns/op — the least-noisy estimate on a shared
// machine. Benchmarks absent from the baseline are reported and skipped,
// so adding a benchmark never breaks the gate before the baseline is
// regenerated (scripts/bench.sh).
//
// With -cluster-gate the tool instead judges the baseline's recorded
// cluster_gate block (written by scripts/bench_server.sh): aggregate
// 3-node words/s must be at least -cluster-min times the single-node
// rate. The scaling target only means something when the machine can
// actually run the fleet in parallel, so on boxes with fewer than 4
// cores the gate degrades to a sanity floor — clustering on a
// timeshared core must not collapse aggregate throughput below half the
// single-node rate. No stdin is read in this mode.
//
// With -multi-gate the tool judges the per-bus scaling record instead:
// the baseline's BenchmarkMultiStep/K16vsK1 entries carry a speedup_x
// metric — the paired, drift-immune ratio of the scalar kernel's ns/word
// to the K=16 batch kernel's ns/word/bus — and the best recorded value
// must reach -multi-min. Like min-ns/op folding, the best (maximum)
// speedup across records is the least-noisy estimate on a shared
// machine. No stdin is read in this mode either.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

type baselineFile struct {
	Benchmarks  []baselineEntry `json:"benchmarks"`
	CPU         string          `json:"cpu"`
	ClusterGate *clusterGate    `json:"cluster_gate"`
}

type baselineEntry struct {
	Name       string  `json:"name"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NsPerOp    float64 `json:"ns_per_op"`
	// SpeedupX is the paired per-bus speedup metric reported by
	// BenchmarkMultiStep/K16vsK1 (zero for every other benchmark).
	SpeedupX float64 `json:"speedup_x"`
}

// multiGateBench is the baseline entry -multi-gate judges.
const multiGateBench = "BenchmarkMultiStep/K16vsK1"

// clusterGate is the 3-node throughput record scripts/bench_server.sh
// writes into BENCH_server.json.
type clusterGate struct {
	Nodes              int     `json:"nodes"`
	SessionsPerNode    int     `json:"sessions_per_node"`
	Cores              int     `json:"cores"`
	ClusterWordsPerSec float64 `json:"cluster_words_per_sec"`
	SingleWordsPerSec  float64 `json:"single_words_per_sec"`
	Ratio              float64 `json:"ratio"`
}

// benchLine matches e.g. "BenchmarkRunPair/optimized-4  1000  43.17 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	baselinePath := fs.String("baseline", "BENCH_hotpath.json", "baseline JSON written by scripts/bench.sh")
	maxRatio := fs.Float64("max-ratio", 2.0, "fail when measured ns/op exceeds baseline by this factor")
	cluster := fs.Bool("cluster-gate", false, "judge the baseline's cluster_gate block instead of stdin bench lines")
	clusterMin := fs.Float64("cluster-min", 2.5, "with -cluster-gate: minimum aggregate/single words-per-sec ratio on machines with >= 4 cores")
	multi := fs.Bool("multi-gate", false, "judge the baseline's "+multiGateBench+" speedup_x instead of stdin bench lines")
	multiMin := fs.Float64("multi-min", 2.0, "with -multi-gate: minimum paired K16-vs-K1 per-bus speedup")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parse %s: %v\n", *baselinePath, err)
		return 2
	}
	if *cluster {
		return clusterGateMain(base.ClusterGate, *clusterMin)
	}
	if *multi {
		return multiGateMain(base.Benchmarks, *multiMin)
	}
	// Baseline lookup is (name, gomaxprocs): the same kernel legitimately
	// differs across parallelism levels, so entries never cross-match.
	baseline := make(map[string]map[int]float64)
	for _, e := range base.Benchmarks {
		if baseline[e.Name] == nil {
			baseline[e.Name] = make(map[int]float64)
		}
		baseline[e.Name][e.GoMaxProcs] = e.NsPerOp
	}

	// Fold stdin's bench lines to min ns/op per (name, gomaxprocs).
	type key struct {
		name  string
		procs int
	}
	measured := make(map[key]float64)
	var order []key
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		procs := runtime.GOMAXPROCS(0)
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil {
				procs = p
			}
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		k := key{m[1], procs}
		if old, ok := measured[k]; !ok {
			measured[k] = ns
			order = append(order, k)
		} else if ns < old {
			measured[k] = ns
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: read stdin: %v\n", err)
		return 2
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		return 2
	}

	failed, gated := 0, 0
	for _, k := range order {
		ns := measured[k]
		want, ok := baseline[k.name][k.procs]
		if !ok || want <= 0 {
			fmt.Printf("benchgate: SKIP %s (gomaxprocs %d): no baseline entry\n", k.name, k.procs)
			continue
		}
		gated++
		ratio := ns / want
		status := "ok"
		if ratio > *maxRatio {
			status = "FAIL"
			failed++
		}
		fmt.Printf("benchgate: %-4s %s (gomaxprocs %d): %.4g ns/op vs baseline %.4g (%.2fx, limit %.2fx)\n",
			status, k.name, k.procs, ns, want, ratio, *maxRatio)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed beyond %.2fx\n", failed, *maxRatio)
		return 1
	}
	fmt.Printf("benchgate: all %d gated benchmark(s) within %.2fx of baseline\n", gated, *maxRatio)
	return 0
}

// clusterGateMain judges the recorded 3-node scaling ratio. The full
// target applies only when the recording machine could host the fleet in
// parallel (>= 4 cores: three nodes plus the drivers); below that the
// nodes timeshare one core and the only meaningful check is that
// clustering does not collapse throughput.
func clusterGateMain(g *clusterGate, minRatio float64) int {
	if g == nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline has no cluster_gate block (rerun scripts/bench_server.sh)")
		return 2
	}
	required := minRatio
	mode := "scaling"
	if g.Cores < 4 {
		required = 0.5
		mode = fmt.Sprintf("timeshared (%d cores)", g.Cores)
	}
	fmt.Printf("benchgate: cluster_gate [%s]: %d nodes x %d sessions: %.0f words/s aggregate vs %.0f single (%.2fx, need >= %.2fx)\n",
		mode, g.Nodes, g.SessionsPerNode, g.ClusterWordsPerSec, g.SingleWordsPerSec, g.Ratio, required)
	if g.Ratio < required {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: cluster ratio %.2fx below %.2fx\n", g.Ratio, required)
		return 1
	}
	fmt.Println("benchgate: cluster gate ok")
	return 0
}

// multiGateMain judges the recorded K16-vs-K1 per-bus speedup. The metric
// is paired inside one timing window, so unlike raw ns/op it is immune to
// CPU frequency drift between records; the gate direction is inverted
// relative to the ns/op gate — speedup is higher-is-better, so records
// fold by maximum and the best one must clear the floor.
func multiGateMain(entries []baselineEntry, minSpeedup float64) int {
	best, found := 0.0, 0
	for _, e := range entries {
		if e.Name != multiGateBench || e.SpeedupX <= 0 {
			continue
		}
		found++
		fmt.Printf("benchgate: multi_gate: %s (gomaxprocs %d): %.2fx per-bus speedup\n",
			e.Name, e.GoMaxProcs, e.SpeedupX)
		if e.SpeedupX > best {
			best = e.SpeedupX
		}
	}
	if found == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: baseline has no %s speedup_x records (rerun scripts/bench.sh)\n", multiGateBench)
		return 2
	}
	if best < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: best multi-bus speedup %.2fx below %.2fx\n", best, minSpeedup)
		return 1
	}
	fmt.Printf("benchgate: multi gate ok (best %.2fx >= %.2fx)\n", best, minSpeedup)
	return 0
}

package client_test

import (
	"context"
	"testing"

	"nanobus/client"
	"nanobus/internal/server"
)

// hotTrace builds a trace whose words complement each other cycle to
// cycle, so every wire toggles and the bus heats as fast as the model
// allows — the shortest path to an encoder switch in a test.
func hotTrace(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = 0xAAAAAAAA
		} else {
			out[i] = 0x55555555
		}
	}
	return out
}

// probeTrigger runs trace through a static-BI session and returns the
// MaxTempK of its third sample. An adaptive session tuned so its trigger
// equals that reading switches deterministically at the third interval
// boundary (temperatures rise monotonically under sustained traffic).
func probeTrigger(t *testing.T, hc *client.Client, trace []uint32, interval uint64) float64 {
	t.Helper()
	ctx := context.Background()
	sess, err := hc.CreateSession(ctx, client.SessionConfig{
		Node: "45nm", Encoding: "BI", IntervalCycles: interval,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.StepBinary(ctx, trace); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 4 {
		t.Fatalf("probe produced %d samples, need at least 4", len(res.Samples))
	}
	return res.Samples[2].MaxTempK
}

// adaptiveCfg is the shared session config of the cross-transport tests:
// tuned so the trigger lands exactly on the probe's third sample.
func adaptiveCfg(trigger float64, interval uint64) client.SessionConfig {
	return client.SessionConfig{
		Node:           "45nm",
		IntervalCycles: interval,
		Adaptive: &client.AdaptiveSpec{
			Base: "BI", Cool: "CoolSpread",
			CeilingK: trigger + 0.25, GuardK: 0.25, HysteresisK: 0.1,
		},
	}
}

// TestAdaptiveCrossTransportConformance drives the same trace through an
// adaptive session over HTTP and over NBWP and requires the encoder
// switches to be identical: same switch cycles, same directions, same
// bit-exact trigger temperatures, same per-sample encoder tags, and the
// same occupancy split. This is the adaptive extension of the NBWP
// fidelity guarantee.
func TestAdaptiveCrossTransportConformance(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	const interval = 1000
	trace := hotTrace(8 * interval)
	cfg := adaptiveCfg(probeTrigger(t, hc, trace, interval), interval)

	hs, err := hc.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hs.Info.Encoding != "adaptive" || hs.Info.Adaptive == nil {
		t.Fatalf("http session info = %q adaptive %v, want \"adaptive\" spec", hs.Info.Encoding, hs.Info.Adaptive)
	}
	if _, err := hs.StepBinary(ctx, trace); err != nil {
		t.Fatal(err)
	}
	httpRes, err := hs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	nc := dialNBWP(t, addr)
	var streamed []client.Sample
	ns, err := nc.Open(ctx, cfg, func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	if ns.Info.Encoding != "adaptive" || ns.Info.Adaptive == nil {
		t.Fatalf("nbwp session info = %q adaptive %v, want \"adaptive\" spec", ns.Info.Encoding, ns.Info.Adaptive)
	}
	if _, err := ns.StepBinary(ctx, trace); err != nil {
		t.Fatal(err)
	}
	nbwpRes, err := ns.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	if httpRes.Adaptive == nil || nbwpRes.Adaptive == nil {
		t.Fatalf("adaptive result blocks missing: http %v nbwp %v", httpRes.Adaptive, nbwpRes.Adaptive)
	}
	if len(httpRes.Adaptive.Switches) == 0 {
		t.Fatal("scenario produced no encoder switch; the conformance check would be vacuous")
	}
	if len(nbwpRes.Adaptive.Switches) != len(httpRes.Adaptive.Switches) {
		t.Fatalf("switch count %d over nbwp, %d over http",
			len(nbwpRes.Adaptive.Switches), len(httpRes.Adaptive.Switches))
	}
	for i, hsw := range httpRes.Adaptive.Switches {
		nsw := nbwpRes.Adaptive.Switches[i]
		if nsw.Cycle != hsw.Cycle || nsw.From != hsw.From || nsw.To != hsw.To ||
			!bitsEq(nsw.TempK, hsw.TempK) {
			t.Fatalf("switch %d differs across transports: nbwp %+v http %+v", i, nsw, hsw)
		}
	}
	if nbwpRes.Adaptive.Active != httpRes.Adaptive.Active {
		t.Fatalf("active encoder %q over nbwp, %q over http", nbwpRes.Adaptive.Active, httpRes.Adaptive.Active)
	}
	for i, ho := range httpRes.Adaptive.Occupancy {
		if no := nbwpRes.Adaptive.Occupancy[i]; no != ho {
			t.Fatalf("occupancy %d differs across transports: nbwp %+v http %+v", i, no, ho)
		}
	}
	if len(nbwpRes.Samples) != len(httpRes.Samples) {
		t.Fatalf("samples = %d over nbwp, %d over http", len(nbwpRes.Samples), len(httpRes.Samples))
	}
	for i, hsm := range httpRes.Samples {
		nsm := nbwpRes.Samples[i]
		if nsm.Encoder != hsm.Encoder || nsm.Switched != hsm.Switched ||
			!bitsEq(nsm.MaxTempK, hsm.MaxTempK) || !bitsEq(nsm.EnergyJ, hsm.EnergyJ) {
			t.Fatalf("sample %d differs across transports: nbwp %+v http %+v", i, nsm, hsm)
		}
	}
	// The SAMPLE frames streamed mid-step carry the same encoder tags as
	// the retained result samples.
	if len(streamed) == 0 {
		t.Fatal("nbwp stream produced no samples")
	}
	for i, ss := range streamed {
		rs := nbwpRes.Samples[i]
		if ss.Encoder != rs.Encoder || ss.Switched != rs.Switched || !bitsEq(ss.MaxTempK, rs.MaxTempK) {
			t.Fatalf("streamed sample %d differs from result: %+v vs %+v", i, ss, rs)
		}
	}

	if err := ns.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hs.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveCheckpointResumeNBWP pins the NBCP v3 round trip over the
// wire: checkpoint an adaptive session mid-run (after its switch),
// delete it, resurrect it from the downloaded envelope on a fresh
// connection, replay the tail, and require figures, switch events and
// per-sample encoder tags bit-identical to an uninterrupted run.
func TestAdaptiveCheckpointResumeNBWP(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	const interval = 1000
	trace := hotTrace(8 * interval)
	cfg := adaptiveCfg(probeTrigger(t, hc, trace, interval), interval)
	const cut = 3500 // mid-interval, past the switch at cycle 3000

	nc := dialNBWP(t, addr)
	full, err := nc.Open(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.StepBinary(ctx, trace); err != nil {
		t.Fatal(err)
	}
	want, err := full.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if want.Adaptive == nil || len(want.Adaptive.Switches) == 0 {
		t.Fatal("reference run has no switch; the resume would not cross one")
	}

	crashy, err := nc.Open(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := crashy.Info.ID
	if _, err := crashy.StepBinary(ctx, trace[:cut]); err != nil {
		t.Fatal(err)
	}
	env, err := crashy.CheckpointDownload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashy.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The session is gone; the envelope alone must rebuild it —
	// controller tuning, mode, both encoder states and all.
	nc2 := dialNBWP(t, addr)
	resumed, resp, err := nc2.RestoreSession(ctx, id, env)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Resurrected {
		t.Fatal("expected a resurrection (the session was deleted)")
	}
	if resp.Cycles != cut {
		t.Fatalf("restored cycles = %d, want %d", resp.Cycles, cut)
	}
	if _, err := resumed.StepBinary(ctx, trace[cut:]); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	if got.Cycles != want.Cycles || !bitsEq(got.Total.TotalJ, want.Total.TotalJ) ||
		!bitsEq(got.MaxTempK, want.MaxTempK) {
		t.Fatalf("resumed figures differ:\ngot  %d %v %v\nwant %d %v %v",
			got.Cycles, got.Total.TotalJ, got.MaxTempK, want.Cycles, want.Total.TotalJ, want.MaxTempK)
	}
	if got.Adaptive == nil || len(got.Adaptive.Switches) != len(want.Adaptive.Switches) {
		t.Fatalf("resumed switches %+v, want %+v", got.Adaptive, want.Adaptive)
	}
	for i, wsw := range want.Adaptive.Switches {
		gsw := got.Adaptive.Switches[i]
		if gsw.Cycle != wsw.Cycle || gsw.From != wsw.From || gsw.To != wsw.To ||
			!bitsEq(gsw.TempK, wsw.TempK) {
			t.Fatalf("resumed switch %d: %+v, want %+v", i, gsw, wsw)
		}
	}
	for i, wo := range want.Adaptive.Occupancy {
		if go_ := got.Adaptive.Occupancy[i]; go_ != wo {
			t.Fatalf("resumed occupancy %d: %+v, want %+v", i, go_, wo)
		}
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("resumed samples = %d, want %d", len(got.Samples), len(want.Samples))
	}
	for i, wsm := range want.Samples {
		gsm := got.Samples[i]
		if gsm.Encoder != wsm.Encoder || gsm.Switched != wsm.Switched ||
			!bitsEq(gsm.EnergyJ, wsm.EnergyJ) || !bitsEq(gsm.MaxTempK, wsm.MaxTempK) {
			t.Fatalf("resumed sample %d: %+v, want %+v", i, gsm, wsm)
		}
	}
}

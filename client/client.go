// Package client is the thin Go client for nanobusd, the streaming
// bus-simulation service (internal/server). It speaks the v1 wire
// protocol and maps the service's typed error codes back onto the
// library's sentinels, so errors.Is(err, nanobus.ErrUnknownEncoding) works
// the same against the service as against the in-process library.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/itrs"
	"nanobus/internal/server"
)

// Wire types, re-exported so callers need only this package.
type (
	// SessionConfig opens a session; see server.CreateSessionRequest.
	SessionConfig = server.CreateSessionRequest
	// SessionInfo describes an open session.
	SessionInfo = server.SessionInfo
	// StepLine is one batch of words and/or idle cycles.
	StepLine = server.StepLine
	// StepSummary reports what one step request consumed.
	StepSummary = server.StepSummary
	// Sample is one sampling interval's record.
	Sample = server.Sample
	// Result is a session's outcome.
	Result = server.Result
	// BusResult is one bus's slice of a multi-bus Result.
	BusResult = server.BusResult
	// AdaptiveSpec configures the adaptive encoding controller on
	// SessionConfig.Adaptive.
	AdaptiveSpec = server.AdaptiveSpec
	// AdaptiveResult summarizes an adaptive session's switches.
	AdaptiveResult = server.AdaptiveResult
	// OwnerInfo names the cluster node that owns a session; it rides on
	// not_owner/moved redirects.
	OwnerInfo = server.OwnerInfo
	// ClusterStatus is a node's identity and static membership (GET
	// /v1/cluster).
	ClusterStatus = server.ClusterStatus
)

// APIError is a non-2xx response from the service. Unwrap maps the wire
// code onto the library's sentinel errors where one exists.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// Owner names the cluster node that serves the session, set only on
	// not_owner/moved redirects from a clustered server.
	Owner *OwnerInfo
}

func (e *APIError) Error() string {
	return fmt.Sprintf("nanobusd: %s (%s, HTTP %d)", e.Message, e.Code, e.StatusCode)
}

// Unwrap surfaces the library sentinel behind the wire code, if any.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case server.CodeUnknownNode:
		return itrs.ErrUnknownNode
	case server.CodeUnknownEncoding:
		return encoding.ErrUnknownScheme
	case server.CodePoisoned:
		return core.ErrPoisoned
	case server.CodeCheckpointCorrupt:
		return core.ErrCheckpointCorrupt
	case server.CodeCheckpointMismatch:
		return core.ErrCheckpointMismatch
	case server.CodeCanceled:
		return context.Canceled
	default:
		return nil
	}
}

// Client talks to one nanobusd instance.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport reuse, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// closeQuietly closes a response body.
func closeQuietly(c io.Closer) {
	//nanolint:ignore droppederr nothing recoverable in a close failure after the response is consumed
	_ = c.Close()
}

// do sends a request and decodes a JSON response into out (unless nil),
// converting non-2xx responses into *APIError.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer closeQuietly(resp.Body)
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(resp *http.Response) error {
	var er server.ErrorResponse
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err == nil && json.Unmarshal(body, &er) == nil && er.Code != "" {
		return &APIError{StatusCode: resp.StatusCode, Code: er.Code, Message: er.Error,
			Owner: er.Owner}
	}
	return &APIError{StatusCode: resp.StatusCode, Code: server.CodeInternal,
		Message: strings.TrimSpace(string(body))}
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, method, c.base+path, body)
}

// CreateSession opens a session on the service.
func (c *Client) CreateSession(ctx context.Context, cfg SessionConfig) (*HTTPSession, error) {
	payload, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, "/v1/sessions", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var info SessionInfo
	if err := c.do(req, &info); err != nil {
		return nil, err
	}
	return &HTTPSession{c: c, Info: info}, nil
}

// Healthz checks the service's health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := c.newRequest(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}

// Cluster fetches the node's identity and static membership (GET
// /v1/cluster) — the bootstrap for a Router. Single-node servers answer
// with an empty Self and no members.
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/v1/cluster", nil)
	if err != nil {
		return ClusterStatus{}, err
	}
	var st ClusterStatus
	if err := c.do(req, &st); err != nil {
		return ClusterStatus{}, err
	}
	return st, nil
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer closeQuietly(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// HTTPSession is a handle on one service-side simulation stream over the
// HTTP transport. It implements Session; NBWPSession is its binary twin.
type HTTPSession struct {
	c    *Client
	Info SessionInfo
}

// ID returns the session id.
func (s *HTTPSession) ID() string { return s.Info.ID }

func (s *HTTPSession) path(suffix string) string {
	return "/v1/sessions/" + s.Info.ID + suffix
}

// Step streams one batch of data words as NDJSON.
func (s *HTTPSession) Step(ctx context.Context, words []uint32) (StepSummary, error) {
	return s.StepLines(ctx, []StepLine{{Words: words}})
}

// StepIdle advances the session n idle cycles.
func (s *HTTPSession) StepIdle(ctx context.Context, n uint64) (StepSummary, error) {
	return s.StepLines(ctx, []StepLine{{Idle: n}})
}

// encodeLines serialises step lines into one NDJSON body.
func encodeLines(lines []StepLine) ([]byte, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, line := range lines {
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
	}
	return body.Bytes(), nil
}

// StepLines streams a sequence of word/idle batches as one NDJSON request.
func (s *HTTPSession) StepLines(ctx context.Context, lines []StepLine) (StepSummary, error) {
	body, err := encodeLines(lines)
	if err != nil {
		return StepSummary{}, err
	}
	req, err := s.c.newRequest(ctx, http.MethodPost, s.path("/step"), bytes.NewReader(body))
	if err != nil {
		return StepSummary{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	var sum StepSummary
	if err := s.c.do(req, &sum); err != nil {
		return StepSummary{}, err
	}
	return sum, nil
}

// binBufPool recycles StepBinary encode buffers; a session streaming many
// batches reuses one buffer instead of allocating 4×len(words) per call.
var binBufPool sync.Pool

// StepBinary streams words in the binary format (little-endian uint32),
// the lowest-overhead path for bulk traces.
func (s *HTTPSession) StepBinary(ctx context.Context, words []uint32) (StepSummary, error) {
	bp, _ := binBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	// The request body is fully sent before do returns, so the buffer can
	// go back to the pool on exit.
	defer binBufPool.Put(bp)
	if cap(*bp) < 4*len(words) {
		*bp = make([]byte, 4*len(words))
	}
	buf := (*bp)[:4*len(words)]
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	req, err := s.c.newRequest(ctx, http.MethodPost, s.path("/step"), bytes.NewReader(buf))
	if err != nil {
		return StepSummary{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var sum StepSummary
	if err := s.c.do(req, &sum); err != nil {
		return StepSummary{}, err
	}
	return sum, nil
}

// StepStream streams batches while receiving every closed sampling
// interval incrementally through onSample, and returns the final summary.
// body provides the NDJSON request body (use BodyFromLines for a fixed
// batch list, or an io.Pipe for an unbounded stream).
func (s *HTTPSession) StepStream(ctx context.Context, body io.Reader, onSample func(Sample)) (StepSummary, error) {
	req, err := s.c.newRequest(ctx, http.MethodPost, s.path("/step?stream=samples"), body)
	if err != nil {
		return StepSummary{}, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return StepSummary{}, err
	}
	defer closeQuietly(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return StepSummary{}, decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line server.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return StepSummary{}, fmt.Errorf("decode stream line: %w", err)
		}
		switch {
		case line.Sample != nil:
			if onSample != nil {
				onSample(*line.Sample)
			}
		case line.Summary != nil:
			return *line.Summary, nil
		case line.Error != nil:
			return StepSummary{}, &APIError{StatusCode: http.StatusOK,
				Code: line.Error.Code, Message: line.Error.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return StepSummary{}, err
	}
	return StepSummary{}, fmt.Errorf("nanobusd: stream ended without a summary")
}

// BodyFromLines serialises step lines into an NDJSON reader for
// StepStream.
func BodyFromLines(lines []StepLine) (io.Reader, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, line := range lines {
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
	}
	return &body, nil
}

// Status fetches the session's live counters (retried under WithRetry:
// a status read is always idempotent).
func (s *HTTPSession) Status(ctx context.Context) (SessionInfo, error) {
	build := func() (*http.Request, error) {
		return s.c.newRequest(ctx, http.MethodGet, s.path(""), nil)
	}
	var info SessionInfo
	if err := s.c.doRetriable(ctx, build, &info); err != nil {
		return SessionInfo{}, err
	}
	return info, nil
}

// Result fetches the session outcome, closing the partial sampling
// interval first (like Bus.Finish) unless finish is false.
func (s *HTTPSession) Result(ctx context.Context, finish bool) (*Result, error) {
	path := s.path("/result")
	if !finish {
		path += "?finish=0"
	}
	req, err := s.c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := s.c.do(req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Close deletes the session, releasing its simulator back to the
// service's pool.
func (s *HTTPSession) Close(ctx context.Context) error {
	req, err := s.c.newRequest(ctx, http.MethodDelete, s.path(""), nil)
	if err != nil {
		return err
	}
	return s.c.do(req, nil)
}

package client_test

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nanobus"
	"nanobus/client"
	"nanobus/internal/server"
)

func newService(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

func words(seed uint32, n int) []uint32 {
	out := make([]uint32, n)
	x := seed
	for i := range out {
		x = x*1664525 + 1013904223
		out[i] = x
	}
	return out
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestRoundTripMatchesFacade drives one session through the client and the
// same schedule through the public nanobus facade, and requires
// bit-identical results — the client-visible form of the service's
// fidelity guarantee.
func TestRoundTripMatchesFacade(t *testing.T) {
	c := newService(t)
	ctx := context.Background()

	sess, err := c.CreateSession(ctx, client.SessionConfig{
		Node: "65nm", Encoding: "BI", IntervalCycles: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := words(3, 700)
	if _, err := sess.Step(ctx, data); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.StepIdle(ctx, 300); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}

	node, err := nanobus.ResolveNode("65nm")
	if err != nil {
		t.Fatal(err)
	}
	bus, err := nanobus.New(node,
		nanobus.WithEncoding("BI"),
		nanobus.WithInterval(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.StepBatch(ctx, data); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.StepIdleBatch(ctx, 300); err != nil {
		t.Fatal(err)
	}
	if err := bus.Finish(); err != nil {
		t.Fatal(err)
	}

	tot := bus.TotalEnergy()
	if res.Cycles != bus.Cycles() {
		t.Fatalf("cycles: service %d, facade %d", res.Cycles, bus.Cycles())
	}
	if !bitsEq(res.Total.TotalJ, tot.Total()) || !bitsEq(res.Total.SelfJ, tot.Self) ||
		!bitsEq(res.Total.CoupAdjJ, tot.CoupAdj) || !bitsEq(res.Total.CoupNonAdjJ, tot.CoupNonAdj) {
		t.Fatalf("energy differs: service %+v, facade %+v", res.Total, tot)
	}
	if len(res.Samples) != len(bus.Samples()) {
		t.Fatalf("samples: service %d, facade %d", len(res.Samples), len(bus.Samples()))
	}
	for i, ls := range bus.Samples() {
		ss := res.Samples[i]
		if ss.EndCycle != ls.EndCycle || !bitsEq(ss.EnergyJ, ls.Energy) ||
			!bitsEq(ss.AvgTempK, ls.AvgTemp) || !bitsEq(ss.MaxTempK, ls.MaxTemp) {
			t.Fatalf("sample %d differs: service %+v, facade %+v", i, ss, ls)
		}
	}
}

// TestBinaryMatchesNDJSON sends the same words over both wire formats and
// expects identical summaries and results.
func TestBinaryMatchesNDJSON(t *testing.T) {
	c := newService(t)
	ctx := context.Background()
	data := words(11, 512)

	run := func(binary bool) (*client.Result, client.StepSummary) {
		sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "45nm", IntervalCycles: 128})
		if err != nil {
			t.Fatal(err)
		}
		var sum client.StepSummary
		if binary {
			sum, err = sess.StepBinary(ctx, data)
		} else {
			sum, err = sess.Step(ctx, data)
		}
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Result(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Close(ctx); err != nil {
			t.Fatal(err)
		}
		return res, sum
	}

	rn, sn := run(false)
	rb, sb := run(true)
	if sn != sb {
		t.Fatalf("summaries differ: ndjson %+v, binary %+v", sn, sb)
	}
	if !bitsEq(rn.Total.TotalJ, rb.Total.TotalJ) || !bitsEq(rn.MaxTempK, rb.MaxTempK) {
		t.Fatalf("results differ: ndjson %+v, binary %+v", rn.Total, rb.Total)
	}
}

// TestStepStreamDeliversSamples checks the incremental sample channel and
// terminal summary of the streaming step form.
func TestStepStreamDeliversSamples(t *testing.T) {
	c := newService(t)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	body, err := client.BodyFromLines([]client.StepLine{
		{Words: words(7, 250)},
		{Idle: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	var samples []client.Sample
	sum, err := sess.StepStream(ctx, body, func(s client.Sample) { samples = append(samples, s) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Words != 250 || sum.Idle != 150 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(samples) != 4 { // 400 cycles / 100-cycle interval
		t.Fatalf("got %d streamed samples, want 4", len(samples))
	}
	for i, s := range samples {
		if want := uint64(100 * (i + 1)); s.EndCycle != want {
			t.Fatalf("sample %d ends at cycle %d, want %d", i, s.EndCycle, want)
		}
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSentinelMapping proves errors.Is works identically against the
// service as against the in-process library: wire codes unwrap to the
// nanobus facade sentinels.
func TestSentinelMapping(t *testing.T) {
	c := newService(t)
	ctx := context.Background()

	_, err := c.CreateSession(ctx, client.SessionConfig{Node: "13nm"})
	if !errors.Is(err, nanobus.ErrUnknownNode) {
		t.Fatalf("unknown node not mapped to nanobus.ErrUnknownNode: %v", err)
	}
	_, err = c.CreateSession(ctx, client.SessionConfig{Node: "90nm", Encoding: "ROT13"})
	if !errors.Is(err, nanobus.ErrUnknownEncoding) {
		t.Fatalf("unknown encoding not mapped to nanobus.ErrUnknownEncoding: %v", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("wire detail lost: %v", err)
	}
	if (&client.APIError{Code: server.CodePoisoned}).Unwrap() != nanobus.ErrSimulatorPoisoned {
		t.Fatal("poisoned code does not unwrap to nanobus.ErrSimulatorPoisoned")
	}
	if (&client.APIError{Code: server.CodeCanceled}).Unwrap() != context.Canceled {
		t.Fatal("canceled code does not unwrap to context.Canceled")
	}
}

// TestStatusAndLifecycle covers Status counters and the closed-session
// error path.
func TestStatusAndLifecycle(t *testing.T) {
	c := newService(t)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.StepLines(ctx, []client.StepLine{{Words: words(1, 40), Idle: 24}}); err != nil {
		t.Fatal(err)
	}
	info, err := sess.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Words != 40 || info.IdleCycles != 24 {
		t.Fatalf("status = %+v", info)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := sess.Status(ctx); !errors.As(err, &apiErr) || apiErr.Code != server.CodeNotFound {
		t.Fatalf("status after close: %v", err)
	}
	if err := sess.Close(ctx); !errors.As(err, &apiErr) || apiErr.Code != server.CodeNotFound {
		t.Fatalf("double close: %v", err)
	}
}

// TestHealthzAndMetrics sanity-checks the operational endpoints through
// the client.
func TestHealthzAndMetrics(t *testing.T) {
	c := newService(t)
	ctx := context.Background()
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"nanobusd_up 1", "nanobusd_sessions_active", "nanobusd_words_total"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, text)
		}
	}
}

// TestStreamBodyReader ensures StepStream accepts an arbitrary reader,
// not just BodyFromLines output.
func TestStreamBodyReader(t *testing.T) {
	c := newService(t)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, client.SessionConfig{Node: "90nm", IntervalCycles: 32})
	if err != nil {
		t.Fatal(err)
	}
	var body io.Reader = strings.NewReader(`{"idle":64}` + "\n")
	sum, err := sess.StepStream(ctx, body, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Idle != 64 || sum.Samples != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

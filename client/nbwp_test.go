package client_test

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nanobus/client"
	"nanobus/internal/server"
)

// newNBWPService stands up one server with both surfaces: the HTTP
// handler via httptest and an NBWP listener on a loopback port.
func newNBWPService(t *testing.T, cfg server.Config) (*server.Server, *client.Client, string) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		//nanolint:ignore droppederr the accept loop's exit error is net.ErrClosed on cleanup
		_ = srv.ServeNBWP(lis)
	}()
	t.Cleanup(func() {
		//nanolint:ignore droppederr test cleanup; the listener may already be closed by Drain
		_ = lis.Close()
	})
	return srv, client.New(ts.URL, client.WithHTTPClient(ts.Client())), lis.Addr().String()
}

func dialNBWP(t *testing.T, addr string) *client.NBWPConn {
	t.Helper()
	nc, err := client.DialNBWP(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//nanolint:ignore droppederr test cleanup; the connection may already be closed
		_ = nc.Close()
	})
	return nc
}

// TestNBWPMatchesHTTP drives the same trace through both transports and
// requires bit-identical results — the fidelity guarantee that makes
// NBWP a drop-in peer of the v1 surface. Streamed NBWP samples must also
// match the retained samples of the result bit for bit.
func TestNBWPMatchesHTTP(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	cfg := client.SessionConfig{Node: "90nm", Encoding: "BI", IntervalCycles: 256, TrackWireTemps: true}
	data := words(11, 2000)

	hs, err := hc.CreateSession(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.StepBinary(ctx, data); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.StepIdle(ctx, 300); err != nil {
		t.Fatal(err)
	}
	httpRes, err := hs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	nc := dialNBWP(t, addr)
	var streamed []client.Sample
	ns, err := nc.Open(ctx, cfg, func(s client.Sample) { streamed = append(streamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	if ns.Info.Width != httpRes.Width {
		t.Fatalf("open width = %d, want %d", ns.Info.Width, httpRes.Width)
	}
	sum, err := ns.StepBinary(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Words != uint64(len(data)) {
		t.Fatalf("step words = %d, want %d", sum.Words, len(data))
	}
	if _, err := ns.StepIdle(ctx, 300); err != nil {
		t.Fatal(err)
	}
	nbwpRes, err := ns.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	if nbwpRes.Cycles != httpRes.Cycles || nbwpRes.Width != httpRes.Width {
		t.Fatalf("cycles/width = %d/%d, want %d/%d", nbwpRes.Cycles, nbwpRes.Width, httpRes.Cycles, httpRes.Width)
	}
	if !bitsEq(nbwpRes.Total.TotalJ, httpRes.Total.TotalJ) ||
		!bitsEq(nbwpRes.Total.SelfJ, httpRes.Total.SelfJ) ||
		!bitsEq(nbwpRes.AvgTempK, httpRes.AvgTempK) ||
		!bitsEq(nbwpRes.MaxTempK, httpRes.MaxTempK) {
		t.Fatalf("figures differ across transports:\nnbwp %+v\nhttp %+v", nbwpRes.Total, httpRes.Total)
	}
	if len(nbwpRes.Samples) != len(httpRes.Samples) {
		t.Fatalf("samples = %d, want %d", len(nbwpRes.Samples), len(httpRes.Samples))
	}
	// The SAMPLE frames streamed mid-step must be the pre-finish samples
	// of the result, bit for bit (the final partial interval closes at
	// Result time, after the stream).
	if len(streamed) == 0 || len(streamed) > len(nbwpRes.Samples) {
		t.Fatalf("streamed %d samples, result has %d", len(streamed), len(nbwpRes.Samples))
	}
	for i, ss := range streamed {
		rs := nbwpRes.Samples[i]
		if ss.EndCycle != rs.EndCycle || !bitsEq(ss.EnergyJ, rs.EnergyJ) ||
			!bitsEq(ss.MaxTempK, rs.MaxTempK) || len(ss.WireTempsK) != len(rs.WireTempsK) {
			t.Fatalf("streamed sample %d differs from result: %+v vs %+v", i, ss, rs)
		}
	}

	if err := ns.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hs.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nc.Goodbye(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNBWPPipelinedSeq streams a window of sequenced batches without
// waiting, then verifies acks arrive in order, duplicates are
// acknowledged idempotently, and gaps are rejected — the write-ahead
// idempotency machinery over the pipelined transport.
func TestNBWPPipelinedSeq(t *testing.T) {
	_, _, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	nc := dialNBWP(t, addr)
	ns, err := nc.Open(ctx, client.SessionConfig{Node: "65nm", IntervalCycles: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const batches = 20
	const batchWords = 96
	pend := make([]*client.StepPending, 0, batches)
	for seq := uint64(1); seq <= batches; seq++ {
		sp, err := ns.SendStepSeq(seq, words(uint32(seq), batchWords))
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, sp)
	}
	var cycles uint64
	for i, sp := range pend {
		sum, err := sp.Wait(ctx)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		if sum.Duplicate || sum.Seq != uint64(i+1) || sum.Words != batchWords {
			t.Fatalf("batch %d ack = %+v", i+1, sum)
		}
		if sum.Cycles <= cycles {
			t.Fatalf("batch %d cycles %d not monotonic past %d", i+1, sum.Cycles, cycles)
		}
		cycles = sum.Cycles
	}

	// Replaying an applied seq is acknowledged without re-stepping.
	dup, err := ns.StepBinarySeq(ctx, batches, words(batches, batchWords))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.Cycles != cycles {
		t.Fatalf("duplicate ack = %+v, want Duplicate with cycles %d", dup, cycles)
	}
	// Skipping ahead is a seq_gap conflict carrying the HTTP status.
	_, err = ns.StepBinarySeq(ctx, batches+5, words(1, 8))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != "seq_gap" || ae.StatusCode != 409 {
		t.Fatalf("gap err = %v, want seq_gap/409", err)
	}
	// The pipeline is intact after the error: the next consecutive seq
	// applies normally.
	next, err := ns.StepBinarySeq(ctx, batches+1, words(99, batchWords))
	if err != nil || next.Duplicate {
		t.Fatalf("post-gap step = %+v, %v", next, err)
	}
}

// TestNBWPAttachAcrossTransports creates a session over HTTP, steps it
// over NBWP, and reads the result back over HTTP — one session table,
// two surfaces.
func TestNBWPAttachAcrossTransports(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	hs, err := hc.CreateSession(ctx, client.SessionConfig{Node: "45nm", IntervalCycles: 128})
	if err != nil {
		t.Fatal(err)
	}
	nc := dialNBWP(t, addr)
	ns, err := nc.Attach(ctx, hs.Info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ns.Info.ID != hs.Info.ID || ns.Info.Width == 0 {
		t.Fatalf("attach info = %+v", ns.Info)
	}
	if _, err := ns.StepBinary(ctx, words(5, 500)); err != nil {
		t.Fatal(err)
	}
	res, err := hs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 500 {
		t.Fatalf("cycles = %d, want 500", res.Cycles)
	}
}

// TestNBWPReconnectReplay is the crash-recovery flow: checkpoint, kill
// the connection mid-stream without a goodbye, reconnect, restore, and
// replay from the acknowledged frontier. The final figures must be
// bit-identical to an uninterrupted run of the same schedule.
func TestNBWPReconnectReplay(t *testing.T) {
	store := server.NewMemStore()
	_, _, addr := newNBWPService(t, server.Config{Store: store})
	ctx := context.Background()
	cfg := client.SessionConfig{Node: "90nm", IntervalCycles: 256}
	const batches = 12
	const batchWords = 128

	// Reference: the same schedule, uninterrupted.
	ref := dialNBWP(t, addr)
	rs, err := ref.Open(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= batches; seq++ {
		if _, err := rs.StepBinarySeq(ctx, seq, words(uint32(seq), batchWords)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := rs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	// Crashy run: checkpoint at seq 5, keep going, then drop the
	// connection with acked-but-uncheckpointed batches outstanding.
	nc := dialNBWP(t, addr)
	ns, err := nc.Open(ctx, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := ns.Info.ID
	for seq := uint64(1); seq <= 8; seq++ {
		if _, err := ns.StepBinarySeq(ctx, seq, words(uint32(seq), batchWords)); err != nil {
			t.Fatal(err)
		}
		if seq == 5 {
			if _, err := ns.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
	//nanolint:ignore droppederr simulating a crash; the abrupt close error is the point
	_ = nc.Close()

	// Reconnect and restore. The store has seq 5; everything after the
	// checkpoint replays — including batches 6-8 the dead connection had
	// acked — and duplicates are impossible because the restore rewound
	// the acknowledged frontier with the state.
	nc2 := dialNBWP(t, addr)
	ns2, resp, err := nc2.RestoreSession(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 5 {
		t.Fatalf("restored seq = %d, want 5", resp.Seq)
	}
	for seq := resp.Seq + 1; seq <= batches; seq++ {
		if _, err := ns2.StepBinarySeq(ctx, seq, words(uint32(seq), batchWords)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ns2.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || !bitsEq(got.Total.TotalJ, want.Total.TotalJ) ||
		!bitsEq(got.MaxTempK, want.MaxTempK) {
		t.Fatalf("replayed run differs:\ngot  %v %v\nwant %v %v",
			got.Cycles, got.Total.TotalJ, want.Cycles, want.Total.TotalJ)
	}
}

// TestNBWPDrainZeroLoss drains the server in the middle of a pipelined
// sequenced stream and requires that (a) the client is told via a DRAIN
// frame, (b) every batch acknowledged before the connection wound down
// is reflected in the session's durable state, and (c) ShutdownNBWP
// completes once the client finishes. This is the protocol-level half of
// the SIGTERM zero-loss guarantee.
func TestNBWPDrainZeroLoss(t *testing.T) {
	store := server.NewMemStore()
	srv, _, addr := newNBWPService(t, server.Config{Store: store})
	ctx := context.Background()
	nc := dialNBWP(t, addr)

	drained := make(chan struct{})
	var once sync.Once
	nc.SetOnDrain(func() { once.Do(func() { close(drained) }) })

	ns, err := nc.Open(ctx, client.SessionConfig{Node: "65nm", IntervalCycles: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const batchWords = 64
	var ackedSeq uint64
	var ackedCycles uint64
	// Stream sequenced batches with a pipeline window of 4 until the
	// drain notice arrives (Drain fires from another goroutine below).
	go func() {
		time.Sleep(10 * time.Millisecond)
		srv.Drain()
	}()
	window := make([]*client.StepPending, 0, 4)
	seqs := make([]uint64, 0, 4)
	flushWindow := func() bool {
		ok := true
		for i, sp := range window {
			sum, err := sp.Wait(ctx)
			if err != nil {
				ok = false
				break
			}
			ackedSeq, ackedCycles = seqs[i], sum.Cycles
		}
		window, seqs = window[:0], seqs[:0]
		return ok
	}
	for seq := uint64(1); ; seq++ {
		select {
		case <-drained:
		default:
		}
		if nc.Draining() {
			break
		}
		sp, err := ns.SendStepSeq(seq, words(uint32(seq), batchWords))
		if err != nil {
			break
		}
		window = append(window, sp)
		seqs = append(seqs, seq)
		if len(window) == 4 && !flushWindow() {
			break
		}
	}
	flushWindow()
	if ackedSeq == 0 {
		t.Fatal("no batches were acknowledged before the drain")
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain notice never arrived")
	}

	// New NBWP connections must be refused while draining.
	if _, err := client.DialNBWP(ctx, addr); err == nil {
		t.Fatal("dial succeeded on a draining server")
	}

	// The drained server still answers in-flight sessions: checkpoint the
	// acked frontier, then say goodbye.
	ck, err := ns.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Seq != ackedSeq {
		t.Fatalf("checkpointed seq = %d, want acked frontier %d", ck.Seq, ackedSeq)
	}
	if ck.Cycles != ackedCycles {
		t.Fatalf("checkpointed cycles = %d, want acked %d", ck.Cycles, ackedCycles)
	}
	if err := nc.Goodbye(ctx); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.ShutdownNBWP(sctx); err != nil {
		t.Fatalf("ShutdownNBWP: %v", err)
	}
}

// TestConcurrentNBWPSessions is the NBWP twin of the HTTP 64-session
// soak: 8 connections × 8 slots, each pipelining sequenced batches with
// streamed samples, exercised under -race in CI.
func TestConcurrentNBWPSessions(t *testing.T) {
	_, _, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	const conns = 8
	const slotsPerConn = 8
	const batches = 6
	const batchWords = 256

	var wg sync.WaitGroup
	errc := make(chan error, conns*slotsPerConn)
	for ci := 0; ci < conns; ci++ {
		nc := dialNBWP(t, addr)
		for si := 0; si < slotsPerConn; si++ {
			wg.Add(1)
			go func(nc *client.NBWPConn, seed uint32) {
				defer wg.Done()
				var samples atomic.Uint64
				ns, err := nc.Open(ctx, client.SessionConfig{
					Node: "90nm", IntervalCycles: 256, DropSamples: true,
				}, func(client.Sample) { samples.Add(1) })
				if err != nil {
					errc <- err
					return
				}
				pend := make([]*client.StepPending, 0, batches)
				for seq := uint64(1); seq <= batches; seq++ {
					sp, err := ns.SendStepSeq(seq, words(seed+uint32(seq), batchWords))
					if err != nil {
						errc <- err
						return
					}
					pend = append(pend, sp)
				}
				var total uint64
				for _, sp := range pend {
					sum, err := sp.Wait(ctx)
					if err != nil {
						errc <- err
						return
					}
					total += sum.Words
				}
				if total != batches*batchWords {
					errc <- errors.New("word count mismatch")
					return
				}
				res, err := ns.Result(ctx, true)
				if err != nil {
					errc <- err
					return
				}
				if res.Cycles != batches*batchWords || math.IsNaN(res.Total.TotalJ) {
					errc <- errors.New("bad result")
					return
				}
				errc <- ns.Close(ctx)
			}(nc, uint32(ci*1000+si))
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

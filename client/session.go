package client

import "context"

// This file is the transport-agnostic session surface. Both wire
// protocols address the same server-side session object, so a Session is
// the same handle whichever transport opened it: loadgen, smoke, chaos
// and the cluster Router are written against Session/Transport and stop
// branching on HTTP-vs-NBWP. The concrete types (HTTPSession,
// NBWPSession) remain exported for transport-specific extras — NDJSON
// and sample streaming on HTTP, pipelined sends on NBWP.

// Session is one server-side simulation stream, independent of the
// transport that carries it. Errors are *APIError on both transports,
// so errors.Is against the library sentinels works identically.
type Session interface {
	// ID returns the session id, valid on either transport and across
	// reconnects.
	ID() string
	// StepBinary streams one batch of data words (little-endian uint32
	// on both wires) and waits for its acknowledgement.
	StepBinary(ctx context.Context, words []uint32) (StepSummary, error)
	// StepBinarySeq streams one batch under write-ahead sequence number
	// seq (1-based, strictly consecutive). The server applies each seq
	// exactly once: a replayed batch is acknowledged (Duplicate=true)
	// without re-stepping, so retries never double-count energy.
	StepBinarySeq(ctx context.Context, seq uint64, words []uint32) (StepSummary, error)
	// StepIdle advances the session n idle cycles.
	StepIdle(ctx context.Context, n uint64) (StepSummary, error)
	// Result fetches the session outcome, closing the partial sampling
	// interval first (like Bus.Finish) unless finish is false.
	Result(ctx context.Context, finish bool) (*Result, error)
	// Checkpoint snapshots the session into the server's checkpoint
	// store.
	Checkpoint(ctx context.Context) (CheckpointInfo, error)
	// CheckpointDownload snapshots the session and returns the raw NBSE
	// envelope (works even on store-less servers).
	CheckpointDownload(ctx context.Context) ([]byte, error)
	// Restore rewinds the session to its stored checkpoint; resume
	// sequenced steps from the response's Seq+1.
	Restore(ctx context.Context) (RestoreResponse, error)
	// RestoreFrom restores from an envelope previously fetched with
	// CheckpointDownload, bypassing the server's store.
	RestoreFrom(ctx context.Context, envelope []byte) (RestoreResponse, error)
	// Close deletes the session server-side.
	Close(ctx context.Context) error
}

// PipelinedSession is the optional capability of transports that can
// send step batches without waiting for acknowledgements (NBWP). Callers
// that want pipelining type-assert a Session to it and fall back to the
// blocking calls when the assertion fails.
type PipelinedSession interface {
	Session
	// SendStep pipelines one unsequenced batch; Wait on the returned
	// entry in send order.
	SendStep(words []uint32) (*StepPending, error)
	// SendStepSeq pipelines one sequenced batch.
	SendStepSeq(seq uint64, words []uint32) (*StepPending, error)
}

// Transport opens, reattaches and resurrects sessions on one nanobusd
// node. *Client (HTTP) and *NBWPConn (binary) both implement it.
type Transport interface {
	// OpenSession creates a fresh session.
	OpenSession(ctx context.Context, cfg SessionConfig) (Session, error)
	// AttachSession binds an existing session by id — the reattach path
	// after a reconnect or a handoff from another transport.
	AttachSession(ctx context.Context, id string) (Session, error)
	// Resurrect rebuilds a session by id from the server's checkpoint
	// store (envelope nil) or an inline envelope, and returns the handle
	// plus the restored position; resume sequenced steps from Seq+1.
	Resurrect(ctx context.Context, id string, envelope []byte) (Session, RestoreResponse, error)
}

// Interface conformance, pinned at compile time.
var (
	_ Session          = (*HTTPSession)(nil)
	_ Session          = (*NBWPSession)(nil)
	_ PipelinedSession = (*NBWPSession)(nil)
	_ Transport        = (*Client)(nil)
	_ Transport        = (*NBWPConn)(nil)
)

// OpenSession implements Transport over HTTP.
func (c *Client) OpenSession(ctx context.Context, cfg SessionConfig) (Session, error) {
	return c.CreateSession(ctx, cfg)
}

// AttachSession implements Transport over HTTP. The HTTP transport is
// connectionless, so attaching verifies the session exists by reading
// its status.
func (c *Client) AttachSession(ctx context.Context, id string) (Session, error) {
	s := c.Session(id)
	info, err := s.Status(ctx)
	if err != nil {
		return nil, err
	}
	s.Info = info
	return s, nil
}

// Resurrect implements Transport over HTTP: a restore by id rebuilds the
// session from the server's checkpoint store even when the server no
// longer holds the id (process restart, failover to a replica holder).
func (c *Client) Resurrect(ctx context.Context, id string, envelope []byte) (Session, RestoreResponse, error) {
	s := c.Session(id)
	var (
		resp RestoreResponse
		err  error
	)
	if envelope == nil {
		resp, err = s.Restore(ctx)
	} else {
		resp, err = s.RestoreFrom(ctx, envelope)
	}
	if err != nil {
		return nil, RestoreResponse{}, err
	}
	return s, resp, nil
}

// OpenSession implements Transport over NBWP (no sample streaming; use
// Open directly for an onSample callback).
func (nc *NBWPConn) OpenSession(ctx context.Context, cfg SessionConfig) (Session, error) {
	return nc.Open(ctx, cfg, nil)
}

// AttachSession implements Transport over NBWP, binding the session to a
// fresh slot of this connection.
func (nc *NBWPConn) AttachSession(ctx context.Context, id string) (Session, error) {
	return nc.Attach(ctx, id, nil)
}

// Resurrect implements Transport over NBWP; see RestoreSession.
func (nc *NBWPConn) Resurrect(ctx context.Context, id string, envelope []byte) (Session, RestoreResponse, error) {
	s, resp, err := nc.RestoreSession(ctx, id, envelope)
	if err != nil {
		return nil, RestoreResponse{}, err
	}
	return s, resp, nil
}

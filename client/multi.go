package client

import "fmt"

// Multi-bus helpers. A session created with SessionConfig.Buses = K > 1
// steps K buses in lockstep: every batch interleaves one word per bus
// per cycle, cycle-major (cycle r's words for buses 0..K-1 are adjacent).
// Per-bus traces are usually generated independently, so PackInterleaved
// does the transpose once on the client before StepBinary/SendStep.

// PackInterleaved transposes per-bus word columns into the interleaved
// cycle-major batch layout a multi-bus session steps: the returned slice
// holds cols[0][r], cols[1][r], ... cols[K-1][r] for each cycle r. All
// columns must have equal length. dst is reused when it has capacity.
func PackInterleaved(dst []uint32, cols ...[]uint32) ([]uint32, error) {
	k := len(cols)
	if k == 0 {
		return dst[:0], nil
	}
	rows := len(cols[0])
	for i, c := range cols {
		if len(c) != rows {
			return nil, fmt.Errorf("nanobus: bus column %d has %d words, bus 0 has %d (lockstep batches need equal lengths)", i, len(c), rows)
		}
	}
	n := k * rows
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	for r := 0; r < rows; r++ {
		base := r * k
		for i, c := range cols {
			dst[base+i] = c[r]
		}
	}
	return dst, nil
}

// BusSamples splits a bus-tagged sample stream (the onSample callback of
// a multi-bus session) back into per-bus order: it returns samples whose
// Bus field equals bus. The slice shares backing arrays with in.
func BusSamples(in []Sample, bus int) []Sample {
	var out []Sample
	for _, s := range in {
		if s.Bus == bus {
			out = append(out, s)
		}
	}
	return out
}

package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"nanobus/internal/nbwp"
	"nanobus/internal/server"
)

// This file is the NBWP client transport: one persistent TCP connection
// multiplexing up to 255 sessions, with pipelined sends. Every request
// frame is answered by exactly one ACK or ERROR frame in request order,
// so correlation is a FIFO: the sender enqueues a pending entry and
// writes the frame under one lock (keeping queue order identical to wire
// order), and the reader goroutine pairs each arriving ACK/ERROR with
// the oldest pending entry. SAMPLE and DRAIN frames are unsolicited and
// bypass the FIFO. Failures map onto the same *APIError (and therefore
// the same library sentinels) as the HTTP surface.

// ErrConnClosed marks an operation on an NBWP connection that has
// already failed or been closed.
var ErrConnClosed = errors.New("nanobus: nbwp connection closed")

// NBWPConn is one NBWP connection to a nanobusd instance.
type NBWPConn struct {
	c  net.Conn
	br *bufio.Reader

	// wmu orders frame writes and pending-FIFO pushes; bw/fw and the
	// slot table are guarded by it.
	wmu      sync.Mutex
	bw       *bufio.Writer
	fw       nbwp.FrameWriter
	slots    [256]bool
	onSample [256]func(Sample)

	// pmu guards the pending FIFO (pushed under wmu+pmu, popped by the
	// reader goroutine) and the terminal error.
	pmu     sync.Mutex
	pending []*nbwpPending
	readErr error

	draining atomic.Bool
	onDrain  atomic.Pointer[func()]
	closed   atomic.Bool
}

// nbwpPending is one in-flight request. step (hot path) or decode runs
// on the reader goroutine while the frame payload buffer is valid; its
// result is delivered through done (buffered, so an abandoned waiter
// never blocks the reader). step is a typed field rather than a decode
// closure so the pipelined STEP path allocates nothing per frame.
type nbwpPending struct {
	step   *StepPending
	decode func(h nbwp.Header, payload []byte) error
	done   chan error
}

// DialNBWP connects to a nanobusd NBWP listener at addr (host:port) and
// performs the HELLO exchange. The returned connection is safe for
// concurrent use by multiple sessions.
func DialNBWP(ctx context.Context, addr string) (*NBWPConn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	nc := &NBWPConn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
	nc.fw = nbwp.FrameWriter{W: nc.bw}
	go nc.readLoop()
	// HELLO pins the protocol version before any session traffic.
	if err := nc.roundTrip(ctx, nbwp.Header{Type: nbwp.TypeHello}, nil, nil); err != nil {
		//nanolint:ignore droppederr the handshake error is reported; close is best-effort cleanup
		_ = nc.Close()
		return nil, err
	}
	return nc, nil
}

// Close tears the connection down, failing every in-flight request with
// ErrConnClosed. Sessions opened on it stay registered server-side and
// can be reattached from a new connection.
func (nc *NBWPConn) Close() error {
	if !nc.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := nc.c.Close()
	nc.fail(ErrConnClosed)
	return err
}

// Goodbye ends the connection gracefully: the server acks and hangs up.
func (nc *NBWPConn) Goodbye(ctx context.Context) error {
	if err := nc.roundTrip(ctx, nbwp.Header{Type: nbwp.TypeGoodbye}, nil, nil); err != nil {
		return err
	}
	return nc.Close()
}

// Draining reports whether the server has announced a drain: finish
// in-flight work, collect results, and say goodbye.
func (nc *NBWPConn) Draining() bool { return nc.draining.Load() }

// Broken reports whether the connection has hit its terminal error (peer
// went away, protocol violation, Close). A broken connection fails every
// operation; dial a fresh one and reattach.
func (nc *NBWPConn) Broken() bool {
	nc.pmu.Lock()
	defer nc.pmu.Unlock()
	return nc.readErr != nil
}

// SetOnDrain installs a callback invoked (once, from the reader
// goroutine) when the server announces a drain.
func (nc *NBWPConn) SetOnDrain(fn func()) { nc.onDrain.Store(&fn) }

// fail parks err as the connection's terminal error and fails every
// pending request with it.
func (nc *NBWPConn) fail(err error) {
	nc.pmu.Lock()
	if nc.readErr == nil {
		nc.readErr = err
	}
	pending := nc.pending
	nc.pending = nil
	err = nc.readErr
	nc.pmu.Unlock()
	for _, p := range pending {
		p.done <- err
	}
}

// readLoop is the connection's reader goroutine: unsolicited frames
// (SAMPLE, DRAIN) dispatch to their handlers, everything else resolves
// the oldest pending request.
func (nc *NBWPConn) readLoop() {
	fr := nbwp.FrameReader{R: nc.br, Max: nbwp.MaxPayload}
	var h nbwp.Header
	for {
		payload, err := fr.ReadFrame(&h)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = ErrConnClosed
			}
			nc.fail(err)
			return
		}
		switch h.Type {
		case nbwp.TypeSample:
			nc.dispatchSample(h, payload)
			continue
		case nbwp.TypeDrain:
			if nc.draining.CompareAndSwap(false, true) {
				if fn := nc.onDrain.Load(); fn != nil && *fn != nil {
					(*fn)()
				}
			}
			continue
		}
		nc.pmu.Lock()
		var p *nbwpPending
		if len(nc.pending) > 0 {
			p = nc.pending[0]
			nc.pending = nc.pending[1:]
		}
		nc.pmu.Unlock()
		if p == nil {
			nc.fail(fmt.Errorf("nanobus: unsolicited %#x frame with no request in flight", uint8(h.Type)))
			return
		}
		switch h.Type {
		case nbwp.TypeAck:
			var derr error
			if p.step != nil {
				derr = p.step.decodeAck(h, payload)
			} else if p.decode != nil {
				derr = p.decode(h, payload)
			}
			p.done <- derr
		case nbwp.TypeError:
			we, perr := nbwp.ParseError(payload)
			if perr != nil {
				nc.fail(perr)
				return
			}
			ae := &APIError{StatusCode: we.Status, Code: we.Code, Message: we.Msg}
			if we.Owner != "" {
				// The owner rides as JSON inside the ERROR frame; a
				// malformed blob degrades to a redirect without contacts.
				var oi OwnerInfo
				if json.Unmarshal([]byte(we.Owner), &oi) == nil {
					ae.Owner = &oi
				}
			}
			p.done <- ae
		default:
			nc.fail(fmt.Errorf("nanobus: unexpected %#x frame in ack position", uint8(h.Type)))
			return
		}
	}
}

func (nc *NBWPConn) dispatchSample(h nbwp.Header, payload []byte) {
	nc.wmu.Lock()
	fn := nc.onSample[h.Slot]
	nc.wmu.Unlock()
	if fn == nil {
		return
	}
	// Multi-bus sessions prefix the sample with its bus index
	// (FlagMultiSample); adaptive sessions append the encoder tail
	// (FlagAdaptiveSample); scalar static sessions stay on the plain
	// layout.
	var bus uint32
	var ws nbwp.Sample
	var encoder string
	var switched bool
	var err error
	switch {
	case h.Flags&nbwp.FlagMultiSample != 0:
		bus, ws, err = nbwp.ParseBusSample(payload, nil)
	case h.Flags&nbwp.FlagAdaptiveSample != 0:
		ws, encoder, switched, err = nbwp.ParseAdaptiveSample(payload, nil)
	default:
		ws, err = nbwp.ParseSample(payload, nil)
	}
	if err != nil {
		return
	}
	fn(Sample{
		Bus:         int(bus),
		EndCycle:    ws.EndCycle,
		EnergyJ:     ws.EnergyJ,
		SelfJ:       ws.SelfJ,
		CoupAdjJ:    ws.CoupAdjJ,
		CoupNonAdjJ: ws.CoupNonAdjJ,
		AvgTempK:    ws.AvgTempK,
		MaxTempK:    ws.MaxTempK,
		MaxWire:     int(ws.MaxWire),
		WireTempsK:  ws.WireTempsK,
		Encoder:     encoder,
		Switched:    switched,
	})
}

// send enqueues a pending entry and writes the request frame under one
// lock, keeping the FIFO aligned with wire order. The caller waits on
// the returned entry (see NBWPPending.Wait).
func (nc *NBWPConn) send(h nbwp.Header, payload []byte, decode func(nbwp.Header, []byte) error) (*nbwpPending, error) {
	p := &nbwpPending{decode: decode, done: make(chan error, 1)}
	if err := nc.sendPending(p, h, payload); err != nil {
		return nil, err
	}
	return p, nil
}

// sendPending enqueues a caller-owned pending entry and writes the
// frame. On error the entry may already have been failed through its
// done channel, so the caller must not reuse (or pool) it.
func (nc *NBWPConn) sendPending(p *nbwpPending, h nbwp.Header, payload []byte) error {
	nc.wmu.Lock()
	nc.pmu.Lock()
	if nc.readErr != nil {
		err := nc.readErr
		nc.pmu.Unlock()
		nc.wmu.Unlock()
		return err
	}
	nc.pending = append(nc.pending, p)
	nc.pmu.Unlock()
	err := nc.fw.WriteFrame(h, payload)
	nc.wmu.Unlock()
	if err != nil {
		nc.fail(err)
		return err
	}
	return nil
}

// Flush pushes buffered request frames to the server. Blocking waits
// flush implicitly; a purely pipelined sender should flush before going
// idle.
func (nc *NBWPConn) Flush() error {
	nc.wmu.Lock()
	err := nc.bw.Flush()
	nc.wmu.Unlock()
	if err != nil {
		nc.fail(err)
	}
	return err
}

// wait flushes and blocks until the pending request resolves or ctx
// ends. An abandoned request stays in the FIFO (its ack still arrives
// and must be consumed in order); only its result is discarded.
func (nc *NBWPConn) wait(ctx context.Context, p *nbwpPending) error {
	err, _ := nc.waitDone(ctx, p)
	return err
}

// waitDone is wait plus a flag reporting whether the entry actually
// resolved through its done channel — only then has the reader
// goroutine let go of it and it may be pooled for reuse.
func (nc *NBWPConn) waitDone(ctx context.Context, p *nbwpPending) (error, bool) {
	if err := nc.Flush(); err != nil {
		return err, false
	}
	select {
	case err := <-p.done:
		return err, true
	case <-ctx.Done():
		return ctx.Err(), false
	}
}

// roundTrip sends one frame and blocks for its acknowledgement.
func (nc *NBWPConn) roundTrip(ctx context.Context, h nbwp.Header, payload []byte, decode func(nbwp.Header, []byte) error) error {
	p, err := nc.send(h, payload, decode)
	if err != nil {
		return err
	}
	return nc.wait(ctx, p)
}

// --- Session surface ---------------------------------------------------------

// NBWPSession is a session bound to a slot of an NBWPConn. It mirrors
// the HTTP Session surface; the underlying session is the same
// server-side object either transport addresses.
type NBWPSession struct {
	nc   *NBWPConn
	slot uint8
	Info SessionInfo
}

// ID returns the session id.
func (s *NBWPSession) ID() string { return s.Info.ID }

// allocSlot claims a free slot byte.
func (nc *NBWPConn) allocSlot() (uint8, error) {
	nc.wmu.Lock()
	defer nc.wmu.Unlock()
	for s := 1; s < 256; s++ {
		if !nc.slots[s] {
			nc.slots[s] = true
			return uint8(s), nil
		}
	}
	return 0, errors.New("nanobus: all 255 session slots are bound")
}

func (nc *NBWPConn) freeSlot(s uint8) {
	nc.wmu.Lock()
	nc.slots[s] = false
	nc.onSample[s] = nil
	nc.wmu.Unlock()
}

// Open creates a session over the connection. onSample, when non-nil,
// receives streamed SAMPLE frames (the ?stream=samples twin) on the
// connection's reader goroutine.
func (nc *NBWPConn) Open(ctx context.Context, cfg SessionConfig, onSample func(Sample)) (*NBWPSession, error) {
	payload, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var flags uint8
	if onSample != nil {
		flags |= nbwp.FlagStream
	}
	return nc.open(ctx, flags, payload, onSample)
}

// Attach binds an existing session (created over either transport) to a
// slot of this connection — the reattach path after a reconnect.
func (nc *NBWPConn) Attach(ctx context.Context, id string, onSample func(Sample)) (*NBWPSession, error) {
	flags := uint8(nbwp.FlagAttach)
	if onSample != nil {
		flags |= nbwp.FlagStream
	}
	return nc.open(ctx, flags, []byte(id), onSample)
}

func (nc *NBWPConn) open(ctx context.Context, flags uint8, payload []byte, onSample func(Sample)) (*NBWPSession, error) {
	slot, err := nc.allocSlot()
	if err != nil {
		return nil, err
	}
	if onSample != nil {
		nc.wmu.Lock()
		nc.onSample[slot] = onSample
		nc.wmu.Unlock()
	}
	var info SessionInfo
	p, err := nc.send(nbwp.Header{Type: nbwp.TypeOpen, Flags: flags, Slot: slot},
		payload, decodeJSON(&info))
	if err == nil {
		err = nc.wait(ctx, p)
	}
	if err != nil {
		nc.freeSlot(slot)
		return nil, err
	}
	return &NBWPSession{nc: nc, slot: slot, Info: info}, nil
}

// decodeJSON returns a pending decoder unmarshalling the ack payload
// into out. It runs on the reader goroutine; the copy json makes is what
// lets the frame buffer be reused immediately.
func decodeJSON(out any) func(nbwp.Header, []byte) error {
	return func(_ nbwp.Header, payload []byte) error {
		return json.Unmarshal(payload, out)
	}
}

// StepPending is one pipelined in-flight STEP frame; Wait blocks for its
// acknowledgement. Settled entries are recycled through a pool, so a
// StepPending must not be touched after Wait returns.
type StepPending struct {
	nc   *NBWPConn
	pend nbwpPending
	sum  StepSummary
}

// stepPendingPool recycles StepPending entries (and their buffered done
// channels) so the pipelined hot path allocates nothing per frame.
var stepPendingPool sync.Pool

func newStepPending(nc *NBWPConn) *StepPending {
	sp, _ := stepPendingPool.Get().(*StepPending)
	if sp == nil {
		sp = &StepPending{}
		sp.pend.step = sp
		sp.pend.done = make(chan error, 1)
	}
	sp.nc = nc
	sp.sum = StepSummary{}
	return sp
}

// decodeAck runs on the reader goroutine while the ack payload buffer
// is valid.
func (sp *StepPending) decodeAck(ah nbwp.Header, payload []byte) error {
	var ack nbwp.StepAck
	if err := nbwp.ParseStepAck(payload, &ack); err != nil {
		return err
	}
	sp.sum = StepSummary{
		Words: ack.Words, Idle: ack.Idle, Cycles: ack.Cycles, Samples: ack.Samples,
		Duplicate: ah.Flags&nbwp.FlagDuplicate != 0,
	}
	if ah.Flags&nbwp.FlagSeq != 0 || ah.Seq != 0 {
		sp.sum.Seq = uint64(ah.Seq)
	}
	return nil
}

// Wait flushes and blocks until the batch is acknowledged, returning its
// summary. The StepPending is recycled when the ack (or its error) has
// been consumed; an abandoned wait (ctx ended first) leaves the entry
// alive for the reader goroutine and simply never reuses it.
func (sp *StepPending) Wait(ctx context.Context) (StepSummary, error) {
	err, settled := sp.nc.waitDone(ctx, &sp.pend)
	sum := sp.sum
	if settled {
		stepPendingPool.Put(sp)
	}
	if err != nil {
		return StepSummary{}, err
	}
	return sum, nil
}

// SendStepSeq pipelines one binary words batch under write-ahead
// sequence number seq (1-based, strictly consecutive, at most 2^32-1 —
// the NBWP header seq is 32-bit) without waiting for the ack: stream a
// window of batches, then Wait on each StepPending in send order. The
// exactly-once ?seq= semantics are the HTTP surface's; after a
// reconnect, replay unacknowledged batches from the last acknowledged
// seq + 1 and duplicates are acked without re-stepping.
func (s *NBWPSession) SendStepSeq(seq uint64, words []uint32) (*StepPending, error) {
	if seq == 0 || seq > math.MaxUint32 {
		return nil, fmt.Errorf("nanobus: nbwp seq %d outside 1..2^32-1", seq)
	}
	return s.sendStep(nbwp.Header{
		Type: nbwp.TypeStep, Flags: nbwp.FlagSeq, Slot: s.slot, Seq: uint32(seq),
	}, words)
}

// SendStep pipelines one unsequenced binary words batch.
func (s *NBWPSession) SendStep(words []uint32) (*StepPending, error) {
	return s.sendStep(nbwp.Header{Type: nbwp.TypeStep, Slot: s.slot}, words)
}

func (s *NBWPSession) sendStep(h nbwp.Header, words []uint32) (*StepPending, error) {
	bp, _ := binBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	// WriteFrame copies the payload into the connection's buffered
	// writer before send returns, so the buffer can go straight back.
	defer binBufPool.Put(bp)
	buf := nbwp.AppendWords((*bp)[:0], words)
	*bp = buf
	sp := newStepPending(s.nc)
	if err := s.nc.sendPending(&sp.pend, h, buf); err != nil {
		// The entry may have been failed through its done channel by
		// fail(); it cannot be pooled.
		return nil, err
	}
	return sp, nil
}

// StepBinary streams one binary words batch and waits for its ack.
func (s *NBWPSession) StepBinary(ctx context.Context, words []uint32) (StepSummary, error) {
	sp, err := s.SendStep(words)
	if err != nil {
		return StepSummary{}, err
	}
	return sp.Wait(ctx)
}

// StepBinarySeq streams one sequenced binary words batch and waits for
// its ack — the blocking twin of SendStepSeq.
func (s *NBWPSession) StepBinarySeq(ctx context.Context, seq uint64, words []uint32) (StepSummary, error) {
	sp, err := s.SendStepSeq(seq, words)
	if err != nil {
		return StepSummary{}, err
	}
	return sp.Wait(ctx)
}

// StepIdle advances the session n idle cycles.
func (s *NBWPSession) StepIdle(ctx context.Context, n uint64) (StepSummary, error) {
	var buf [8]byte
	nbwp.PutIdle(&buf, n)
	sp := newStepPending(s.nc)
	if err := s.nc.sendPending(&sp.pend, nbwp.Header{Type: nbwp.TypeStepIdle, Slot: s.slot}, buf[:]); err != nil {
		return StepSummary{}, err
	}
	return sp.Wait(ctx)
}

// Result fetches the session outcome, closing the partial sampling
// interval first (like Bus.Finish) unless finish is false. The document
// is the same JSON the HTTP surface serves, so figures are
// bit-identical across transports.
func (s *NBWPSession) Result(ctx context.Context, finish bool) (*Result, error) {
	var flags uint8
	if !finish {
		flags |= nbwp.FlagNoFinish
	}
	var res Result
	p, err := s.nc.send(nbwp.Header{Type: nbwp.TypeResult, Flags: flags, Slot: s.slot},
		nil, decodeJSON(&res))
	if err == nil {
		err = s.nc.wait(ctx, p)
	}
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// Checkpoint snapshots the session into the server's checkpoint store.
func (s *NBWPSession) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	var info CheckpointInfo
	p, err := s.nc.send(nbwp.Header{Type: nbwp.TypeCheckpoint, Slot: s.slot}, nil, decodeJSON(&info))
	if err == nil {
		err = s.nc.wait(ctx, p)
	}
	if err != nil {
		return CheckpointInfo{}, err
	}
	return info, nil
}

// CheckpointDownload snapshots the session and returns the raw envelope
// (works even on servers with no checkpoint store).
func (s *NBWPSession) CheckpointDownload(ctx context.Context) ([]byte, error) {
	var env []byte
	p, err := s.nc.send(nbwp.Header{Type: nbwp.TypeCheckpoint, Flags: nbwp.FlagDownload, Slot: s.slot},
		nil, func(_ nbwp.Header, payload []byte) error {
			env = append([]byte(nil), payload...)
			return nil
		})
	if err == nil {
		err = s.nc.wait(ctx, p)
	}
	if err != nil {
		return nil, err
	}
	return env, nil
}

// Restore rewinds the session to its stored checkpoint; resume
// sequenced steps from Seq+1.
func (s *NBWPSession) Restore(ctx context.Context) (RestoreResponse, error) {
	return s.nc.restore(ctx, s.slot, s.Info.ID, nil)
}

// RestoreFrom restores the session from an envelope previously fetched
// with CheckpointDownload, bypassing the server's store.
func (s *NBWPSession) RestoreFrom(ctx context.Context, envelope []byte) (RestoreResponse, error) {
	return s.nc.restore(ctx, s.slot, s.Info.ID, envelope)
}

// RestoreSession resurrects a session by id onto a fresh slot of this
// connection — the reconnect-after-crash path: the server rebuilds the
// session from its stored checkpoint (or the inline envelope) and binds
// it, so sequenced steps resume from the response's Seq+1.
func (nc *NBWPConn) RestoreSession(ctx context.Context, id string, envelope []byte) (*NBWPSession, RestoreResponse, error) {
	slot, err := nc.allocSlot()
	if err != nil {
		return nil, RestoreResponse{}, err
	}
	resp, err := nc.restore(ctx, slot, id, envelope)
	if err != nil {
		nc.freeSlot(slot)
		return nil, RestoreResponse{}, err
	}
	return &NBWPSession{nc: nc, slot: slot, Info: SessionInfo{ID: id}}, resp, nil
}

func (nc *NBWPConn) restore(ctx context.Context, slot uint8, id string, envelope []byte) (RestoreResponse, error) {
	payload := nbwp.AppendRestore(nil, id, envelope)
	var resp RestoreResponse
	p, err := nc.send(nbwp.Header{Type: nbwp.TypeRestore, Slot: slot}, payload, decodeJSON(&resp))
	if err == nil {
		err = nc.wait(ctx, p)
	}
	if err != nil {
		return RestoreResponse{}, err
	}
	return resp, nil
}

// Close deletes the session server-side (GOODBYE) and frees its slot.
func (s *NBWPSession) Close(ctx context.Context) error {
	var resp server.CloseResponse
	p, err := s.nc.send(nbwp.Header{Type: nbwp.TypeGoodbye, Slot: s.slot}, nil, decodeJSON(&resp))
	if err == nil {
		err = s.nc.wait(ctx, p)
	}
	s.nc.freeSlot(s.slot)
	return err
}

// Detach frees the session's slot without closing the server-side
// session (which stays addressable for reattach).
func (s *NBWPSession) Detach() { s.nc.freeSlot(s.slot) }

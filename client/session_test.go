package client_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"nanobus/client"
	"nanobus/internal/server"
)

// This file is the implementation-agnostic Session suite: every subtest
// is written against client.Session/client.Transport only, and the whole
// suite runs once per transport. The two transports address the same
// server, so the suite both checks each implementation's contract and
// pins them bit-identical to each other.

// eachTransport runs fn once per transport against one shared service.
func eachTransport(t *testing.T, cfg server.Config, fn func(t *testing.T, tr client.Transport)) {
	t.Helper()
	_, hc, addr := newNBWPService(t, cfg)
	t.Run("http", func(t *testing.T) { fn(t, hc) })
	t.Run("nbwp", func(t *testing.T) { fn(t, dialNBWP(t, addr)) })
}

func sessionSuiteConfig() client.SessionConfig {
	return client.SessionConfig{Node: "90nm", Encoding: "BI", IntervalCycles: 100}
}

// TestSessionSuiteLifecycle drives the full Session surface through the
// interface: open, binary and idle steps, sequenced steps with duplicate
// absorption, result, close.
func TestSessionSuiteLifecycle(t *testing.T) {
	type outcome struct {
		cycles uint64
		total  float64
	}
	results := map[string]outcome{}
	eachTransport(t, server.Config{Store: server.NewMemStore()}, func(t *testing.T, tr client.Transport) {
		ctx := context.Background()
		sess, err := tr.OpenSession(ctx, sessionSuiteConfig())
		if err != nil {
			t.Fatal(err)
		}
		if sess.ID() == "" {
			t.Fatal("empty session id")
		}

		sum, err := sess.StepBinary(ctx, words(7, 64))
		if err != nil || sum.Words != 64 {
			t.Fatalf("StepBinary = %+v, %v", sum, err)
		}
		if sum, err = sess.StepIdle(ctx, 50); err != nil || sum.Idle != 50 {
			t.Fatalf("StepIdle = %+v, %v", sum, err)
		}
		for seq := uint64(1); seq <= 3; seq++ {
			if sum, err = sess.StepBinarySeq(ctx, seq, words(uint32(seq), 32)); err != nil ||
				sum.Duplicate {
				t.Fatalf("seq %d = %+v, %v", seq, sum, err)
			}
		}
		// A replayed batch is acknowledged, not re-applied.
		if sum, err = sess.StepBinarySeq(ctx, 3, words(3, 32)); err != nil || !sum.Duplicate {
			t.Fatalf("replayed seq = %+v, %v (want duplicate ack)", sum, err)
		}
		// A gap is refused with the typed code on both transports.
		var ae *client.APIError
		if _, err := sess.StepBinarySeq(ctx, 9, words(9, 32)); !errors.As(err, &ae) ||
			ae.Code != server.CodeSeqGap {
			t.Fatalf("seq gap = %v, want %s", err, server.CodeSeqGap)
		}

		res, err := sess.Result(ctx, true)
		if err != nil {
			t.Fatal(err)
		}
		wantCycles := uint64(64 + 50 + 3*32)
		if res.Cycles != wantCycles {
			t.Fatalf("cycles = %d, want %d", res.Cycles, wantCycles)
		}
		results[t.Name()] = outcome{cycles: res.Cycles, total: res.Total.TotalJ}

		if err := sess.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Result(ctx, true); !errors.As(err, &ae) ||
			ae.Code != server.CodeNotFound {
			t.Fatalf("result after close = %v, want %s", err, server.CodeNotFound)
		}
	})
	http, nbwp := results["TestSessionSuiteLifecycle/http"], results["TestSessionSuiteLifecycle/nbwp"]
	if http.cycles == 0 || nbwp.cycles == 0 {
		t.Fatal("a transport subtest did not record a result")
	}
	if math.Float64bits(http.total) != math.Float64bits(nbwp.total) {
		t.Fatalf("transports disagree: http %x vs nbwp %x",
			math.Float64bits(http.total), math.Float64bits(nbwp.total))
	}
}

// TestSessionSuiteDurability drives checkpoint/restore/resurrect through
// the interface: rewind to a stored checkpoint, replay the tail as
// duplicates, and restore from a downloaded envelope.
func TestSessionSuiteDurability(t *testing.T) {
	eachTransport(t, server.Config{Store: server.NewMemStore()}, func(t *testing.T, tr client.Transport) {
		ctx := context.Background()
		sess, err := tr.OpenSession(ctx, sessionSuiteConfig())
		if err != nil {
			t.Fatal(err)
		}
		step := func(first, last uint64) {
			t.Helper()
			for seq := first; seq <= last; seq++ {
				if _, err := sess.StepBinarySeq(ctx, seq, words(uint32(seq), 64)); err != nil {
					t.Fatalf("seq %d: %v", seq, err)
				}
			}
		}
		step(1, 4)
		info, err := sess.Checkpoint(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if info.Seq != 4 || !info.Stored || info.SHA256 == "" {
			t.Fatalf("checkpoint = %+v", info)
		}
		env, err := sess.CheckpointDownload(ctx)
		if err != nil || len(env) == 0 {
			t.Fatalf("download = %d bytes, %v", len(env), err)
		}
		step(5, 6)

		// Restore rewinds to the stored checkpoint; the tail replays as
		// duplicates up to the frontier and fresh past it.
		resp, err := sess.Restore(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Seq != 4 {
			t.Fatalf("restore seq = %d, want 4", resp.Seq)
		}
		sum, err := sess.StepBinarySeq(ctx, 5, words(5, 64))
		if err != nil || sum.Duplicate {
			// Seq 5 was un-applied by the rewind; it must apply fresh.
			t.Fatalf("post-restore seq 5 = %+v, %v", sum, err)
		}

		// RestoreFrom an inline envelope rewinds the same way.
		if resp, err = sess.RestoreFrom(ctx, env); err != nil || resp.Seq != 4 {
			t.Fatalf("restore-from = %+v, %v", resp, err)
		}

		// Resurrect by id via the transport hands back a working handle.
		sess2, resp2, err := tr.Resurrect(ctx, sess.ID(), nil)
		if err != nil || resp2.Seq != 4 {
			t.Fatalf("resurrect = %+v, %v", resp2, err)
		}
		if _, err := sess2.StepBinarySeq(ctx, 5, words(5, 64)); err != nil {
			t.Fatal(err)
		}
		if err := sess2.Close(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSessionSuiteAttach opens a session on each transport and reattaches
// it through the other — the same server object answers both wires.
func TestSessionSuiteAttach(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	nc := dialNBWP(t, addr)
	ctx := context.Background()
	for name, pair := range map[string][2]client.Transport{
		"http-to-nbwp": {hc, nc},
		"nbwp-to-http": {nc, hc},
	} {
		t.Run(name, func(t *testing.T) {
			opened, err := pair[0].OpenSession(ctx, sessionSuiteConfig())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := opened.StepBinary(ctx, words(3, 128)); err != nil {
				t.Fatal(err)
			}
			attached, err := pair[1].AttachSession(ctx, opened.ID())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := attached.StepBinary(ctx, words(4, 128)); err != nil {
				t.Fatal(err)
			}
			ra, err := attached.Result(ctx, true)
			if err != nil {
				t.Fatal(err)
			}
			if ra.Cycles != 256 {
				t.Fatalf("cycles across transports = %d, want 256", ra.Cycles)
			}
			if err := attached.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSessionSuiteErrors checks the typed error surface is uniform:
// unknown ids and absent checkpoints produce the same codes on both
// transports.
func TestSessionSuiteErrors(t *testing.T) {
	eachTransport(t, server.Config{}, func(t *testing.T, tr client.Transport) {
		ctx := context.Background()
		var ae *client.APIError
		if _, err := tr.AttachSession(ctx, "00000000deadbeef"); !errors.As(err, &ae) ||
			ae.Code != server.CodeNotFound {
			t.Fatalf("attach unknown id = %v, want %s", err, server.CodeNotFound)
		}
		sess, err := tr.OpenSession(ctx, sessionSuiteConfig())
		if err != nil {
			t.Fatal(err)
		}
		// No store configured: a store-backed restore has nothing to load.
		if _, err := sess.Restore(ctx); !errors.As(err, &ae) ||
			(ae.Code != server.CodeNoCheckpoint && ae.Code != server.CodeNoStore) {
			t.Fatalf("restore without store = %v, want no_checkpoint/no_store", err)
		}
		if err := sess.Close(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

package client_test

import (
	"context"
	"errors"
	"testing"

	"nanobus/client"
	"nanobus/internal/server"
)

// multiCfg is the shared 4-bus session configuration of these tests.
func multiCfg() client.SessionConfig {
	return client.SessionConfig{
		Node: "130nm", Buses: 4, IntervalCycles: 512, TrackWireTemps: true,
	}
}

// multiSlab interleaves four deterministic per-bus streams cycle-major.
func multiSlab(t *testing.T, rows int) []uint32 {
	t.Helper()
	cols := make([][]uint32, 4)
	for k := range cols {
		cols[k] = words(uint32(11+k), rows)
	}
	slab, err := client.PackInterleaved(nil, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return slab
}

// TestPackInterleaved pins the transpose layout and the ragged-column
// error.
func TestPackInterleaved(t *testing.T) {
	got, err := client.PackInterleaved(nil, []uint32{1, 2}, []uint32{10, 20}, []uint32{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{1, 10, 100, 2, 20, 200}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := client.PackInterleaved(nil, []uint32{1}, []uint32{1, 2}); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

// TestMultiBusHTTPvsNBWP drives the same interleaved trace through a
// 4-bus session on each transport and requires bit-identical figures,
// per-bus blocks included. Streamed samples must carry bus tags on both
// wires and match the retained per-bus samples.
func TestMultiBusHTTPvsNBWP(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()
	slab := multiSlab(t, 1500)

	hs, err := hc.CreateSession(ctx, multiCfg())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Info.Buses != 4 {
		t.Fatalf("session info buses = %d, want 4", hs.Info.Buses)
	}
	var httpStreamed []client.Sample
	body, err := client.BodyFromLines([]client.StepLine{{Words: slab}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hs.StepStream(ctx, body, func(s client.Sample) { httpStreamed = append(httpStreamed, s) }); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.StepIdle(ctx, 100); err != nil {
		t.Fatal(err)
	}
	httpRes, err := hs.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	nc := dialNBWP(t, addr)
	var nbwpStreamed []client.Sample
	ns, err := nc.Open(ctx, multiCfg(), func(s client.Sample) { nbwpStreamed = append(nbwpStreamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	sum, err := ns.StepBinary(ctx, slab)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Words != uint64(len(slab)) {
		t.Fatalf("step words = %d, want %d", sum.Words, len(slab))
	}
	if sum.Cycles != 1500 {
		t.Fatalf("step cycles = %d, want 1500 (words/buses)", sum.Cycles)
	}
	if _, err := ns.StepIdle(ctx, 100); err != nil {
		t.Fatal(err)
	}
	nbwpRes, err := ns.Result(ctx, true)
	if err != nil {
		t.Fatal(err)
	}

	if httpRes.Buses != 4 || nbwpRes.Buses != 4 {
		t.Fatalf("result buses = %d/%d, want 4", httpRes.Buses, nbwpRes.Buses)
	}
	if httpRes.Cycles != 1600 || nbwpRes.Cycles != httpRes.Cycles {
		t.Fatalf("cycles = %d/%d, want 1600", httpRes.Cycles, nbwpRes.Cycles)
	}
	if !bitsEq(nbwpRes.Total.TotalJ, httpRes.Total.TotalJ) ||
		!bitsEq(nbwpRes.MaxTempK, httpRes.MaxTempK) ||
		nbwpRes.MaxBus != httpRes.MaxBus || nbwpRes.MaxWire != httpRes.MaxWire {
		t.Fatalf("figures differ across transports:\nnbwp %+v\nhttp %+v", nbwpRes.Total, httpRes.Total)
	}
	if len(httpRes.PerBus) != 4 || len(nbwpRes.PerBus) != 4 {
		t.Fatalf("per_bus lengths = %d/%d, want 4", len(httpRes.PerBus), len(nbwpRes.PerBus))
	}
	var sumJ float64
	for k := range httpRes.PerBus {
		hb, nb := httpRes.PerBus[k], nbwpRes.PerBus[k]
		if hb.Bus != k || nb.Bus != k {
			t.Fatalf("per_bus[%d] tagged %d/%d", k, hb.Bus, nb.Bus)
		}
		if !bitsEq(hb.Total.TotalJ, nb.Total.TotalJ) || !bitsEq(hb.MaxTempK, nb.MaxTempK) {
			t.Fatalf("bus %d figures differ across transports", k)
		}
		sumJ += hb.Total.TotalJ
		if len(hb.TempsK) != httpRes.Width {
			t.Fatalf("bus %d temps len = %d, want width %d", k, len(hb.TempsK), httpRes.Width)
		}
	}
	if relDiff(sumJ, httpRes.Total.TotalJ) > 1e-12 {
		t.Fatalf("per-bus energies sum to %g, total is %g", sumJ, httpRes.Total.TotalJ)
	}

	// Streamed samples: every interval emits one sample per bus, tagged.
	for name, streamed := range map[string][]client.Sample{"http": httpStreamed, "nbwp": nbwpStreamed} {
		if len(streamed) == 0 || len(streamed)%4 != 0 {
			t.Fatalf("%s streamed %d samples, want a positive multiple of 4", name, len(streamed))
		}
		for i, s := range streamed {
			if s.Bus != i%4 {
				t.Fatalf("%s sample %d tagged bus %d, want %d", name, i, s.Bus, i%4)
			}
		}
	}
	// HTTP streams only the intervals its streamed request closes; NBWP
	// streams on every frame of the slot. Both must agree on the shared
	// prefix, and each stream must be a prefix of the retained per-bus
	// samples.
	for i := range httpStreamed {
		if !bitsEq(httpStreamed[i].EnergyJ, nbwpStreamed[i].EnergyJ) ||
			httpStreamed[i].EndCycle != nbwpStreamed[i].EndCycle {
			t.Fatalf("streamed sample %d differs across transports", i)
		}
	}
	if len(nbwpStreamed) < len(httpStreamed) {
		t.Fatalf("nbwp streamed %d samples, http %d", len(nbwpStreamed), len(httpStreamed))
	}
	for k, pb := range httpRes.PerBus {
		got := 0
		for _, s := range nbwpStreamed {
			if s.Bus != k {
				continue
			}
			ps := pb.Samples[got]
			if ps.EndCycle != s.EndCycle || !bitsEq(ps.EnergyJ, s.EnergyJ) {
				t.Fatalf("bus %d retained sample %d differs from streamed", k, got)
			}
			got++
		}
		if got == 0 || got > len(pb.Samples) {
			t.Fatalf("bus %d streamed %d samples, retained %d", k, got, len(pb.Samples))
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d
	}
	return d / m
}

// TestMultiBusMisalignedBatch pins the row-alignment 400 on both
// transports: a batch that is not a whole number of K-word rows must be
// rejected without stepping.
func TestMultiBusMisalignedBatch(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{})
	ctx := context.Background()

	hs, err := hc.CreateSession(ctx, multiCfg())
	if err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := hs.StepBinary(ctx, words(3, 10)); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("HTTP misaligned batch: got %v, want a 400 APIError", err)
	}
	if sum, err := hs.StepBinary(ctx, words(3, 12)); err != nil || sum.Words != 12 {
		t.Fatalf("aligned batch after rejection: %v (words %d)", err, sum.Words)
	}

	nc := dialNBWP(t, addr)
	ns, err := nc.Open(ctx, multiCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.StepBinary(ctx, words(3, 10)); !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("NBWP misaligned batch: got %v, want a 400 APIError", err)
	}
	if sum, err := ns.StepBinary(ctx, words(3, 12)); err != nil || sum.Words != 12 {
		t.Fatalf("aligned NBWP batch after rejection: %v", err)
	}
}

// TestMultiBusCheckpointRestore round-trips a 4-bus session through
// checkpoint/restore on each transport, and resurrects it from a
// downloaded envelope: the replayed tail must land on bit-identical
// figures every time.
func TestMultiBusCheckpointRestore(t *testing.T) {
	_, hc, addr := newNBWPService(t, server.Config{Store: server.NewMemStore()})
	ctx := context.Background()
	nc := dialNBWP(t, addr)

	head, tail := multiSlab(t, 1000), multiSlab(t, 700)
	for name, tr := range map[string]client.Transport{"http": hc, "nbwp": nc} {
		t.Run(name, func(t *testing.T) {
			sess, err := tr.OpenSession(ctx, multiCfg())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.StepBinary(ctx, head); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
			env, err := sess.CheckpointDownload(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.StepBinary(ctx, tail); err != nil {
				t.Fatal(err)
			}
			ref, err := sess.Result(ctx, false)
			if err != nil {
				t.Fatal(err)
			}

			// Rewind to the stored checkpoint and replay the tail.
			resp, err := sess.Restore(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Cycles != 1000 {
				t.Fatalf("restored to cycle %d, want 1000", resp.Cycles)
			}
			if _, err := sess.StepBinary(ctx, tail); err != nil {
				t.Fatal(err)
			}
			replay, err := sess.Result(ctx, false)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEq(replay.Total.TotalJ, ref.Total.TotalJ) || !bitsEq(replay.MaxTempK, ref.MaxTempK) ||
				replay.Cycles != ref.Cycles {
				t.Fatalf("replay after restore differs:\nref    %+v\nreplay %+v", ref.Total, replay.Total)
			}
			for k := range ref.PerBus {
				if !bitsEq(replay.PerBus[k].Total.TotalJ, ref.PerBus[k].Total.TotalJ) {
					t.Fatalf("bus %d energy differs after restore replay", k)
				}
			}

			// Resurrect from the downloaded envelope and replay again.
			res2, resp2, err := tr.Resurrect(ctx, sess.ID(), env)
			if err != nil {
				t.Fatal(err)
			}
			if resp2.Cycles != 1000 {
				t.Fatalf("resurrected to cycle %d, want 1000", resp2.Cycles)
			}
			if _, err := res2.StepBinary(ctx, tail); err != nil {
				t.Fatal(err)
			}
			again, err := res2.Result(ctx, false)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEq(again.Total.TotalJ, ref.Total.TotalJ) {
				t.Fatalf("resurrected replay differs: %g vs %g", again.Total.TotalJ, ref.Total.TotalJ)
			}
			if err := res2.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBusSamples pins the per-bus split of a bus-tagged sample stream.
func TestBusSamples(t *testing.T) {
	in := []client.Sample{
		{Bus: 0, EndCycle: 512}, {Bus: 1, EndCycle: 512},
		{Bus: 0, EndCycle: 1024}, {Bus: 1, EndCycle: 1024},
		{Bus: 0, EndCycle: 1536},
	}
	for bus, want := range [][]uint64{{512, 1024, 1536}, {512, 1024}, nil} {
		got := client.BusSamples(in, bus)
		if len(got) != len(want) {
			t.Fatalf("bus %d: %d samples, want %d", bus, len(got), len(want))
		}
		for i, s := range got {
			if s.Bus != bus || s.EndCycle != want[i] {
				t.Fatalf("bus %d sample %d = %+v, want EndCycle %d", bus, i, s, want[i])
			}
		}
	}
}

package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"nanobus/internal/cluster"
	"nanobus/internal/server"
)

// This file is the client side of cluster mode. A Router holds the
// static membership (bootstrapped from any node's GET /v1/cluster) and
// the same consistent-hash ring the servers route by, so it sends each
// session's traffic straight to the owning node. When a request comes
// back redirected (not_owner/moved), the RoutedSession re-binds to the
// node named in the error's Owner contact and replays the call — a
// migration is invisible to the caller beyond one extra round trip. When
// the owning node dies outright, Recover resurrects the session from its
// replicated checkpoint on a ring successor; the caller replays
// sequenced batches from the returned Seq+1.

// ErrNoNodes marks a Router operation with no reachable membership.
var ErrNoNodes = errors.New("nanobus: no reachable cluster nodes")

// Router routes sessions to the owning node of a static nanobusd
// cluster. Safe for concurrent use; the RoutedSessions it returns are
// not (drive each from one goroutine, like any Session).
type Router struct {
	hc      *http.Client
	useNBWP bool
	retry   *RetryPolicy

	mu      sync.Mutex
	self    string // bootstrap node's name, "" on single-node servers
	nodes   []cluster.Node
	ring    *cluster.Ring
	moved   map[string]string // learned session id -> owning node name
	clients map[string]*Client
	conns   map[string]*NBWPConn
	nextRR  int
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithRouterHTTPClient substitutes the *http.Client used for every HTTP
// transport the Router builds.
func WithRouterHTTPClient(hc *http.Client) RouterOption {
	return func(r *Router) { r.hc = hc }
}

// WithRouterNBWP makes the Router carry session traffic over NBWP for
// nodes that advertise a binary listener (falling back to HTTP for nodes
// that do not).
func WithRouterNBWP() RouterOption {
	return func(r *Router) { r.useNBWP = true }
}

// WithRouterRetry applies a retry policy to the HTTP transports the
// Router builds; see WithRetry for what is (and is not) retried.
func WithRouterRetry(p RetryPolicy) RouterOption {
	return func(r *Router) { p = p.withDefaults(); r.retry = &p }
}

// NewRouter bootstraps a Router from seed v1 base URLs: the first
// reachable seed's GET /v1/cluster supplies the membership. Against a
// single-node server the Router degrades gracefully — every session
// routes to the seed and redirects never fire.
func NewRouter(ctx context.Context, seeds []string, opts ...RouterOption) (*Router, error) {
	r := &Router{
		hc:      http.DefaultClient,
		moved:   map[string]string{},
		clients: map[string]*Client{},
		conns:   map[string]*NBWPConn{},
	}
	for _, opt := range opts {
		opt(r)
	}
	var lastErr error
	for _, seed := range seeds {
		st, err := New(seed, WithHTTPClient(r.hc)).Cluster(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		r.install(seed, st)
		return r, nil
	}
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return nil, fmt.Errorf("nanobus: cluster bootstrap failed: %w", lastErr)
}

// install replaces the membership with st, synthesizing a single member
// around the seed URL when the server is not in cluster mode.
func (r *Router) install(seed string, st ClusterStatus) {
	nodes := st.Nodes
	if len(nodes) == 0 {
		nodes = []cluster.Node{{Name: "default", HTTP: seed}}
	}
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	r.mu.Lock()
	r.self = st.Self
	r.nodes = nodes
	r.ring = cluster.NewRing(names)
	r.mu.Unlock()
}

// Refresh re-reads the membership from the current nodes. Static
// clusters rarely need it; it exists so a long-lived Router survives a
// coordinated config change.
func (r *Router) Refresh(ctx context.Context) error {
	r.mu.Lock()
	nodes := append([]cluster.Node(nil), r.nodes...)
	r.mu.Unlock()
	var lastErr error
	for _, n := range nodes {
		st, err := New(n.HTTP, WithHTTPClient(r.hc)).Cluster(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		r.install(n.HTTP, st)
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return lastErr
}

// Nodes returns the current membership.
func (r *Router) Nodes() []cluster.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]cluster.Node(nil), r.nodes...)
}

// OwnerOf names the node this Router would route session id to: a
// learned migration target if one is recorded, else the ring owner.
func (r *Router) OwnerOf(id string) (cluster.Node, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ownerLocked(id)
}

func (r *Router) ownerLocked(id string) (cluster.Node, bool) {
	if name, ok := r.moved[id]; ok {
		if n, found := cluster.FindNode(r.nodes, name); found {
			return n, true
		}
	}
	if r.ring == nil {
		return cluster.Node{}, false
	}
	return cluster.FindNode(r.nodes, r.ring.Owner(id))
}

// learn records that session id is served by node name.
func (r *Router) learn(id, name string) {
	r.mu.Lock()
	r.moved[id] = name
	r.mu.Unlock()
}

// forget drops the learned owner for id (session closed).
func (r *Router) forget(id string) {
	r.mu.Lock()
	delete(r.moved, id)
	r.mu.Unlock()
}

// httpClient returns (building if needed) the HTTP transport for a node.
func (r *Router) httpClient(n cluster.Node) *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clients[n.Name]; ok {
		return c
	}
	opts := []Option{WithHTTPClient(r.hc)}
	if r.retry != nil {
		opts = append(opts, WithRetry(*r.retry))
	}
	c := New(n.HTTP, opts...)
	r.clients[n.Name] = c
	return c
}

// transport returns the Transport for a node: a pooled NBWP connection
// when the Router prefers NBWP and the node advertises a listener
// (redialing a broken one), otherwise the node's HTTP client.
func (r *Router) transport(ctx context.Context, n cluster.Node) (Transport, error) {
	if r.useNBWP && n.NBWP != "" {
		r.mu.Lock()
		nc := r.conns[n.Name]
		r.mu.Unlock()
		if nc != nil && !nc.Broken() {
			return nc, nil
		}
		nc, err := DialNBWP(ctx, n.NBWP)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		r.conns[n.Name] = nc
		r.mu.Unlock()
		return nc, nil
	}
	return r.httpClient(n), nil
}

// Close tears down the Router's pooled NBWP connections. HTTP transports
// hold no per-node state beyond the shared *http.Client.
func (r *Router) Close() error {
	r.mu.Lock()
	conns := r.conns
	r.conns = map[string]*NBWPConn{}
	r.mu.Unlock()
	var err error
	for _, nc := range conns {
		if cerr := nc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Open creates a session on the cluster. Nodes mint ids they own, so any
// node can take the create; the Router round-robins across members and
// falls through to the next on a connect failure.
func (r *Router) Open(ctx context.Context, cfg SessionConfig) (*RoutedSession, error) {
	r.mu.Lock()
	nodes := append([]cluster.Node(nil), r.nodes...)
	start := r.nextRR
	r.nextRR++
	r.mu.Unlock()
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	var lastErr error
	for i := 0; i < len(nodes); i++ {
		n := nodes[(start+i)%len(nodes)]
		t, err := r.transport(ctx, n)
		if err != nil {
			lastErr = err
			continue
		}
		inner, err := t.OpenSession(ctx, cfg)
		if err != nil {
			lastErr = err
			continue
		}
		r.learn(inner.ID(), n.Name)
		return &RoutedSession{r: r, id: inner.ID(), node: n.Name, inner: inner}, nil
	}
	return nil, fmt.Errorf("nanobus: open failed on all %d nodes: %w", len(nodes), lastErr)
}

// Attach binds an existing session, following redirects to wherever it
// lives now.
func (r *Router) Attach(ctx context.Context, id string) (*RoutedSession, error) {
	rs := &RoutedSession{r: r, id: id}
	if err := rs.rebind(ctx, nil); err != nil {
		return nil, err
	}
	return rs, nil
}

// RoutedSession is a Session handle that follows the cluster: redirects
// re-bind it to the owning node transparently, and Recover fails it over
// to a checkpoint replica when the owner dies. Not safe for concurrent
// use.
type RoutedSession struct {
	r     *Router
	id    string
	node  string
	inner Session
}

// ID returns the session id.
func (rs *RoutedSession) ID() string { return rs.id }

// Node names the cluster member currently serving this session.
func (rs *RoutedSession) Node() string { return rs.node }

// Unwrap returns the transport-level Session currently underneath —
// type-assert to PipelinedSession for NBWP pipelining. The handle is
// invalidated by the next rebind (redirect or Recover).
func (rs *RoutedSession) Unwrap() Session { return rs.inner }

// redirectOwner extracts the Owner contact from a cluster redirect, or
// ok=false when err is anything else.
func redirectOwner(err error) (*OwnerInfo, bool) {
	var ae *APIError
	if errors.As(err, &ae) && (ae.Code == server.CodeNotOwner || ae.Code == server.CodeMoved) {
		return ae.Owner, true
	}
	return nil, false
}

// rebind points the session at the node named by owner (or, when owner
// is nil, whatever the ring and learned moves resolve to) and attaches
// there.
func (rs *RoutedSession) rebind(ctx context.Context, owner *OwnerInfo) error {
	var n cluster.Node
	var found bool
	if owner != nil {
		n, found = cluster.FindNode(rs.r.Nodes(), owner.Node)
		if !found && owner.URL != "" {
			// A contact outside the known membership still names a real
			// server; trust it rather than fail the call.
			n, found = cluster.Node{Name: owner.Node, HTTP: owner.URL, NBWP: owner.NBWP}, true
		}
	} else {
		n, found = rs.r.OwnerOf(rs.id)
	}
	if !found {
		return fmt.Errorf("nanobus: cannot resolve owner of session %s: %w", rs.id, ErrNoNodes)
	}
	t, err := rs.r.transport(ctx, n)
	if err != nil {
		return err
	}
	inner, err := t.AttachSession(ctx, rs.id)
	if err != nil {
		return err
	}
	rs.node, rs.inner = n.Name, inner
	rs.r.learn(rs.id, n.Name)
	return nil
}

// do runs op against the current inner session, following cluster
// redirects. maxHops bounds pathological ping-pong (a moved chain longer
// than the member count cannot be making progress).
func (rs *RoutedSession) do(ctx context.Context, op func(Session) error) error {
	const maxHops = 4
	if rs.inner == nil {
		if err := rs.rebind(ctx, nil); err != nil {
			return err
		}
	}
	var err error
	for hop := 0; hop < maxHops; hop++ {
		err = op(rs.inner)
		owner, redirected := redirectOwner(err)
		if !redirected {
			return err
		}
		if rerr := rs.rebind(ctx, owner); rerr != nil {
			return fmt.Errorf("nanobus: redirected but rebind failed: %w", errors.Join(err, rerr))
		}
	}
	return err
}

// Recover fails the session over after its node died: it walks the
// owner-of-record and then the ring successors, resurrecting the session
// from the replicated checkpoint store on the first node that can, and
// re-binds the handle there. The caller must replay sequenced batches
// from the returned Seq+1 (replays up to the checkpoint are absorbed as
// duplicates, so recovery never double-counts).
func (rs *RoutedSession) Recover(ctx context.Context) (RestoreResponse, error) {
	candidates := rs.r.recoveryCandidates(rs.id)
	if len(candidates) == 0 {
		return RestoreResponse{}, ErrNoNodes
	}
	var lastErr error
	for _, n := range candidates {
		t, err := rs.r.transport(ctx, n)
		if err != nil {
			lastErr = err
			continue
		}
		inner, resp, err := t.Resurrect(ctx, rs.id, nil)
		if err != nil {
			lastErr = err
			continue
		}
		rs.node, rs.inner = n.Name, inner
		rs.r.learn(rs.id, n.Name)
		return resp, nil
	}
	return RestoreResponse{}, fmt.Errorf("nanobus: recovery of session %s failed on all %d candidates: %w",
		rs.id, len(candidates), lastErr)
}

// recoveryCandidates orders the nodes worth trying a resurrect on: the
// owner of record first (it may only have restarted), then the ring
// successors holding checkpoint replicas, then everything else.
func (r *Router) recoveryCandidates(id string) []cluster.Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var out []cluster.Node
	add := func(name string) {
		if seen[name] {
			return
		}
		if n, ok := cluster.FindNode(r.nodes, name); ok {
			seen[name] = true
			out = append(out, n)
		}
	}
	if owner, ok := r.ownerLocked(id); ok {
		add(owner.Name)
	}
	if r.ring != nil {
		for _, name := range r.ring.Successors(id, len(r.nodes)) {
			add(name)
		}
	}
	for _, n := range r.nodes {
		add(n.Name)
	}
	return out
}

// --- Session via the router ---------------------------------------------------

// StepBinary implements Session.
func (rs *RoutedSession) StepBinary(ctx context.Context, words []uint32) (StepSummary, error) {
	var sum StepSummary
	err := rs.do(ctx, func(s Session) error {
		var e error
		sum, e = s.StepBinary(ctx, words)
		return e
	})
	return sum, err
}

// StepBinarySeq implements Session.
func (rs *RoutedSession) StepBinarySeq(ctx context.Context, seq uint64, words []uint32) (StepSummary, error) {
	var sum StepSummary
	err := rs.do(ctx, func(s Session) error {
		var e error
		sum, e = s.StepBinarySeq(ctx, seq, words)
		return e
	})
	return sum, err
}

// StepIdle implements Session.
func (rs *RoutedSession) StepIdle(ctx context.Context, n uint64) (StepSummary, error) {
	var sum StepSummary
	err := rs.do(ctx, func(s Session) error {
		var e error
		sum, e = s.StepIdle(ctx, n)
		return e
	})
	return sum, err
}

// Result implements Session.
func (rs *RoutedSession) Result(ctx context.Context, finish bool) (*Result, error) {
	var res *Result
	err := rs.do(ctx, func(s Session) error {
		var e error
		res, e = s.Result(ctx, finish)
		return e
	})
	return res, err
}

// Checkpoint implements Session.
func (rs *RoutedSession) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	var info CheckpointInfo
	err := rs.do(ctx, func(s Session) error {
		var e error
		info, e = s.Checkpoint(ctx)
		return e
	})
	return info, err
}

// CheckpointDownload implements Session.
func (rs *RoutedSession) CheckpointDownload(ctx context.Context) ([]byte, error) {
	var env []byte
	err := rs.do(ctx, func(s Session) error {
		var e error
		env, e = s.CheckpointDownload(ctx)
		return e
	})
	return env, err
}

// Restore implements Session.
func (rs *RoutedSession) Restore(ctx context.Context) (RestoreResponse, error) {
	var resp RestoreResponse
	err := rs.do(ctx, func(s Session) error {
		var e error
		resp, e = s.Restore(ctx)
		return e
	})
	return resp, err
}

// RestoreFrom implements Session.
func (rs *RoutedSession) RestoreFrom(ctx context.Context, envelope []byte) (RestoreResponse, error) {
	var resp RestoreResponse
	err := rs.do(ctx, func(s Session) error {
		var e error
		resp, e = s.RestoreFrom(ctx, envelope)
		return e
	})
	return resp, err
}

// Close implements Session.
func (rs *RoutedSession) Close(ctx context.Context) error {
	err := rs.do(ctx, func(s Session) error { return s.Close(ctx) })
	if err == nil {
		rs.r.forget(rs.id)
	}
	return err
}

var _ Session = (*RoutedSession)(nil)

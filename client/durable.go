package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nanobus/internal/server"
)

// Durability wire types, re-exported like the rest of the v1 surface.
type (
	// CheckpointInfo acknowledges a checkpoint.
	CheckpointInfo = server.CheckpointInfo
	// RestoreResponse acknowledges a restore; resume from Seq+1.
	RestoreResponse = server.RestoreResponse
)

// RetryPolicy shapes the exponential backoff applied to idempotent
// requests when installed with WithRetry. Attempt n (0-based) sleeps
// min(BaseDelay<<n, MaxDelay) scaled by a uniform [0.5, 1.5) jitter so
// a fleet of resuming clients does not stampede a restarting server.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4).
	MaxAttempts int
	// BaseDelay seeds the backoff (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// jitterMu guards jitterRand; backoff jitter does not need determinism,
// only independence between concurrent sessions.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << attempt
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitterMu.Lock()
	f := 0.5 + jitterRand.Float64()
	jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// WithRetry makes the client retry idempotent requests (status reads,
// checkpoints, restores, and ?seq= sequenced steps) under p. Requests
// whose replay could double-apply work — session creation and
// unsequenced steps — are never retried.
func WithRetry(p RetryPolicy) Option {
	p = p.withDefaults()
	return func(c *Client) { c.retry = &p }
}

// retriable reports whether err is worth retrying on an idempotent
// request: transport-level failures (the server may be mid-restart) and
// the transient service statuses. Typed application errors — poisoned,
// seq conflicts, corrupt checkpoints — are terminal: retrying cannot
// change the outcome, only a restore can.
func retriable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		// Cluster redirects are not retriable in place: replaying the
		// same request at the same node can only yield the same
		// redirect. The Router follows the Owner contact instead.
		if ae.Code == server.CodeNotOwner || ae.Code == server.CodeMoved {
			return false
		}
		switch ae.StatusCode {
		case http.StatusRequestTimeout, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return ae.Code == server.CodeSessionBusy
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// doRetriable runs build+do under the client's retry policy (or once
// when none is installed). build must return a fresh request each call:
// a body reader cannot be replayed after a failed attempt.
func (c *Client) doRetriable(ctx context.Context, build func() (*http.Request, error), out any) error {
	if c.retry == nil {
		req, err := build()
		if err != nil {
			return err
		}
		return c.do(req, out)
	}
	p := *c.retry
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(p.delay(attempt - 1)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		req, err := build()
		if err != nil {
			return err
		}
		err = c.do(req, out)
		if err == nil {
			return nil
		}
		if !retriable(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("nanobusd: giving up after %d attempts: %w", p.MaxAttempts, lastErr)
}

// Session reattaches to an existing session by id — after a process
// restart, or on a client that did not create the session. Info carries
// only the id until Status refreshes it.
func (c *Client) Session(id string) *HTTPSession {
	return &HTTPSession{c: c, Info: SessionInfo{ID: id}}
}

// Checkpoint snapshots the session into the server's checkpoint store
// and returns the envelope's identity.
func (s *HTTPSession) Checkpoint(ctx context.Context) (CheckpointInfo, error) {
	build := func() (*http.Request, error) {
		return s.c.newRequest(ctx, http.MethodPost, s.path("/checkpoint"), nil)
	}
	var info CheckpointInfo
	if err := s.c.doRetriable(ctx, build, &info); err != nil {
		return CheckpointInfo{}, err
	}
	return info, nil
}

// CheckpointDownload snapshots the session and returns the raw envelope
// (works even on servers with no checkpoint store); feed it back through
// RestoreFrom.
func (s *HTTPSession) CheckpointDownload(ctx context.Context) ([]byte, error) {
	req, err := s.c.newRequest(ctx, http.MethodPost, s.path("/checkpoint?download=1"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer closeQuietly(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Restore rewinds the session to its stored checkpoint — or resurrects
// it from the store when the server no longer knows the id (poisoned
// simulator, process restart). Resume sequenced steps from Seq+1.
func (s *HTTPSession) Restore(ctx context.Context) (RestoreResponse, error) {
	build := func() (*http.Request, error) {
		return s.c.newRequest(ctx, http.MethodPut, s.path("/restore"), nil)
	}
	var res RestoreResponse
	if err := s.c.doRetriable(ctx, build, &res); err != nil {
		return RestoreResponse{}, err
	}
	return res, nil
}

// RestoreFrom restores the session from an envelope previously fetched
// with CheckpointDownload, bypassing the server's store.
func (s *HTTPSession) RestoreFrom(ctx context.Context, envelope []byte) (RestoreResponse, error) {
	build := func() (*http.Request, error) {
		req, err := s.c.newRequest(ctx, http.MethodPut, s.path("/restore"), bytes.NewReader(envelope))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	}
	var res RestoreResponse
	if err := s.c.doRetriable(ctx, build, &res); err != nil {
		return RestoreResponse{}, err
	}
	return res, nil
}

// StepBinarySeq streams words in the binary format under write-ahead
// sequence number seq (1-based, strictly consecutive per session). The
// server applies each seq exactly once, so this call is safe to retry:
// a replayed batch is acknowledged (Duplicate=true) without re-stepping,
// and energy is never double-counted.
func (s *HTTPSession) StepBinarySeq(ctx context.Context, seq uint64, words []uint32) (StepSummary, error) {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(buf[4*i:], w)
	}
	build := func() (*http.Request, error) {
		req, err := s.c.newRequest(ctx, http.MethodPost, s.seqPath(seq), bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	}
	var sum StepSummary
	if err := s.c.doRetriable(ctx, build, &sum); err != nil {
		return StepSummary{}, err
	}
	return sum, nil
}

// StepLinesSeq streams word/idle batches as one NDJSON request under
// write-ahead sequence number seq; see StepBinarySeq for the replay
// semantics.
func (s *HTTPSession) StepLinesSeq(ctx context.Context, seq uint64, lines []StepLine) (StepSummary, error) {
	body, err := encodeLines(lines)
	if err != nil {
		return StepSummary{}, err
	}
	build := func() (*http.Request, error) {
		req, err := s.c.newRequest(ctx, http.MethodPost, s.seqPath(seq), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		return req, nil
	}
	var sum StepSummary
	if err := s.c.doRetriable(ctx, build, &sum); err != nil {
		return StepSummary{}, err
	}
	return sum, nil
}

func (s *HTTPSession) seqPath(seq uint64) string {
	return s.path("/step?seq=" + strconv.FormatUint(seq, 10))
}

// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's experiment index), plus micro-benchmarks of the hot kernels.
// Each experiment bench reports the paper-relevant scalar as a custom
// metric so `go test -bench` output doubles as a results table.
//
// The experiment benches run scaled-down windows by default so the whole
// suite completes in minutes; EXPERIMENTS.md records full-scale runs made
// with cmd/nanobus.
package nanobus_test

import (
	"testing"

	"nanobus"
	"nanobus/internal/core"
	"nanobus/internal/encoding"
	"nanobus/internal/expt"
	"nanobus/internal/extract"
	"nanobus/internal/extract3d"
	"nanobus/internal/fdm"
	"nanobus/internal/geometry"
	"nanobus/internal/itrs"
	"nanobus/internal/ode"
	"nanobus/internal/thermal"
	"nanobus/internal/units"
	"nanobus/internal/workload"
)

// BenchmarkTable1 regenerates Table 1 with all derived parameters.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Repeater.Crep*1e12, "Crep130_pF")
			b.ReportMetric(rows[0].InterLayerRise, "dTheta130_K")
		}
	}
}

// BenchmarkFig1b runs the BEM extraction behind Fig. 1(b) (reduced mesh;
// the CLI runs the full 32-wire version).
func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig1B(expt.Fig1BOptions{Wires: 15, PanelsPerEdge: 5}, itrs.N130)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*rows[0].Dist.NonAdjacentFrac(), "nonadjacent_pct")
		}
	}
}

// BenchmarkSec33 runs the non-adjacent underestimation study.
func BenchmarkSec33(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Sec33(expt.Sec33Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].MiddleUnderestimatePct, "underest130_pct")
		}
	}
}

// fig3Bench runs a scaled Fig. 3 study for one bus and reports the
// BI-vs-unencoded energy ratio.
func fig3Bench(b *testing.B, bus string) {
	for i := 0; i < b.N; i++ {
		cells, err := expt.Fig3(expt.Fig3Options{
			Cycles:     100_000,
			Benchmarks: []string{"eon", "swim"},
			Nodes:      []itrs.Node{itrs.N130},
			Buses:      []string{bus},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var bi, un float64
			for _, c := range expt.MeanCells(cells) {
				switch c.Scheme {
				case "BI":
					bi = c.All
				case "Unencoded":
					un = c.All
				}
			}
			b.ReportMetric(bi/un, "BI_vs_unencoded")
		}
	}
}

// BenchmarkFig3_DA regenerates the Fig. 3 data-address bars (scaled).
func BenchmarkFig3_DA(b *testing.B) { fig3Bench(b, "DA") }

// BenchmarkFig3_IA regenerates the Fig. 3 instruction-address bars (scaled).
func BenchmarkFig3_IA(b *testing.B) { fig3Bench(b, "IA") }

// fig4Bench runs a scaled Fig. 4 transient for one benchmark and reports
// the final average temperature.
func fig4Bench(b *testing.B, bench string) {
	for i := 0; i < b.N; i++ {
		series, err := expt.Fig4(expt.Fig4Options{
			Cycles:         1_000_000,
			IntervalCycles: 100_000,
			Benchmarks:     []string{bench},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			s := series[0].Samples
			b.ReportMetric(s[len(s)-1].AvgTemp, "final_avg_K")
		}
	}
}

// BenchmarkFig4_Eon regenerates the Fig. 4(a-b) transients (scaled).
func BenchmarkFig4_Eon(b *testing.B) { fig4Bench(b, "eon") }

// BenchmarkFig4_Swim regenerates the Fig. 4(c-d) transients (scaled).
func BenchmarkFig4_Swim(b *testing.B) { fig4Bench(b, "swim") }

// BenchmarkFig5 regenerates the idle-window study (scaled) and reports the
// cooling across the idle gap.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig5(expt.Fig5Options{
			Cycles:     2_000_000,
			IdleStart:  1_000_000,
			IdleLength: 400_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.DropK*1000, "idle_cooling_mK")
		}
	}
}

// BenchmarkDTheta evaluates the Eq. 7 inter-layer correction for all nodes.
func BenchmarkDTheta(b *testing.B) {
	sum := 0.0
	for i := 0; i < b.N; i++ {
		for _, n := range itrs.Nodes() {
			sum += thermal.InterLayerRise(n)
		}
	}
	_ = sum
}

// --- Micro-benchmarks of the hot kernels ------------------------------------

// BenchmarkEnergyTransition measures the per-cycle energy-model kernel on a
// random-ish word stream.
func BenchmarkEnergyTransition(b *testing.B) {
	sim, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node130, CouplingDepth: -1, DropSamples: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	w := uint32(0x12345678)
	for i := 0; i < b.N; i++ {
		w = w*1664525 + 1013904223
		sim.StepWord(w)
	}
}

// BenchmarkEnergyTransitionSequential measures the kernel on a
// low-transition sequential stream (the common address-bus case).
func BenchmarkEnergyTransitionSequential(b *testing.B) {
	sim, err := nanobus.NewBus(nanobus.BusConfig{Node: nanobus.Node130, CouplingDepth: -1, DropSamples: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.StepWord(uint32(i) * 4)
	}
}

// BenchmarkRK4Step measures one thermal-network integration interval.
func BenchmarkRK4Step(b *testing.B) {
	net, err := thermal.NewFromNode(itrs.N130, 32, thermal.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 32)
	for i := range p {
		p[i] = 1
	}
	dt := 100_000 / itrs.N130.ClockHz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Advance(dt, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRK45Interval compares the adaptive integrator on the same task.
func BenchmarkRK45Interval(b *testing.B) {
	net, err := thermal.NewFromNode(itrs.N130, 32, thermal.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 32)
	for i := range p {
		p[i] = 1
	}
	// Drive the same ODE system through RK45 directly.
	integ := ode.NewRK45(1e-8, 1e-10)
	y := net.Temps(nil)
	if err := net.Advance(1e-6, p); err != nil { // set dynPower inside
		b.Fatal(err)
	}
	dt := 100_000 / itrs.N130.ClockHz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := integ.Integrate(net, 0, dt, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBEMExtraction measures a 5-wire boundary-element solve.
func BenchmarkBEMExtraction(b *testing.B) {
	layout := geometry.BusLayout{
		Wires: 5,
		W:     itrs.N130.WireWidth, T: itrs.N130.WireThickness,
		S: itrs.N130.Spacing(), H: itrs.N130.ILDHeight,
		EpsRel: itrs.N130.EpsRel,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := extract.ExtractBus(layout, extract.Options{PanelsPerEdge: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBEM3DExtraction measures a 3-wire 3-D boundary-element solve.
func BenchmarkBEM3DExtraction(b *testing.B) {
	boxes := extract3d.BusBoxes(itrs.N130, 3, 10*itrs.N130.Pitch())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract3d.Extract(boxes, itrs.N130.EpsRel, extract3d.Options{
			TargetPanels: 120, GroundPlane: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFDMFieldSolve measures the finite-difference thermal validation
// solve.
func BenchmarkFDMFieldSolve(b *testing.B) {
	p := []float64{0, 10, 0}
	for i := 0; i < b.N; i++ {
		g, err := fdm.NewBusCrossSection(itrs.N130, p, units.AmbientK, fdm.Options{CellsPerWidth: 3})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.SolveSteadyState(1e-6, 40000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUSimulator measures raw instruction throughput of the trace
// generator.
func BenchmarkCPUSimulator(b *testing.B) {
	bench, _ := workload.ByName("crafty")
	src, err := bench.NewSource()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal(src.Err())
		}
	}
}

// BenchmarkEncoders measures encoder throughput per scheme.
func BenchmarkEncoders(b *testing.B) {
	for _, name := range encoding.AllSchemes() {
		name := name
		b.Run(name, func(b *testing.B) {
			enc, err := encoding.New(name)
			if err != nil {
				b.Fatal(err)
			}
			w := uint32(0xABCD1234)
			for i := 0; i < b.N; i++ {
				w = w*1664525 + 1013904223
				enc.Encode(w)
			}
		})
	}
}

// BenchmarkFullPipeline measures the end-to-end cycles/sec of CPU ->
// energy -> thermal simulation (both buses).
func BenchmarkFullPipeline(b *testing.B) {
	bench, _ := workload.ByName("swim")
	src, err := bench.NewWarmSource(bench.WarmupCycles)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *core.Simulator {
		sim, err := core.New(core.Config{Node: itrs.N130, CouplingDepth: -1, DropSamples: true})
		if err != nil {
			b.Fatal(err)
		}
		return sim
	}
	ia, da := mk(), mk()
	b.ResetTimer()
	res, err := core.RunPair(src, ia, da, uint64(b.N))
	if err != nil {
		b.Fatal(err)
	}
	if res.Cycles != uint64(b.N) {
		b.Fatalf("ran %d of %d cycles", res.Cycles, b.N)
	}
}

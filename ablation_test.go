// Ablation benchmarks for the design choices the paper (and DESIGN.md)
// call out: lateral thermal coupling, repeater capacitance, non-adjacent
// coupling depth, and the integrator choice. Each bench reports the
// quantity the ablation changes as a custom metric, so
// `go test -bench Ablation` doubles as the ablation table.
package nanobus_test

import (
	"math"
	"testing"

	"nanobus/internal/core"
	"nanobus/internal/itrs"
	"nanobus/internal/ode"
	"nanobus/internal/thermal"
)

// toggleDrive hammers a simulator with the alternating worst-case pattern
// for the given cycles.
func toggleDrive(b *testing.B, sim *core.Simulator, cycles int) {
	b.Helper()
	for i := 0; i < cycles; i++ {
		if i%2 == 0 {
			sim.StepWord(0x55555555)
		} else {
			sim.StepWord(0xAAAAAAAA)
		}
	}
	sim.Finish()
}

// BenchmarkAblationLateralCoupling measures the hottest-wire temperature
// with and without the paper's lateral inter-wire conduction (Sec. 4.1.1,
// the feature prior models lacked). The metric is the max-temperature
// difference: without lateral coupling a centre-heated bus runs hotter.
func BenchmarkAblationLateralCoupling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(disable bool) float64 {
			nw, err := thermal.NewFromNode(itrs.N130, 9, thermal.NodeOptions{
				DisableLateral:    disable,
				DisableInterLayer: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			p := make([]float64, 9)
			p[4] = 20 // hot centre wire, W/m
			ss, err := nw.SteadyState(p)
			if err != nil {
				b.Fatal(err)
			}
			return ss[4]
		}
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(without-with, "lateral_cooling_K")
		}
	}
}

// BenchmarkAblationRepeaters measures the energy share contributed by the
// repeater capacitance Crep (Sec. 3.1.1).
func BenchmarkAblationRepeaters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(noRep bool) float64 {
			sim, err := core.New(core.Config{
				Node: itrs.N130, CouplingDepth: -1,
				NoRepeaters: noRep, DropSamples: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			toggleDrive(b, sim, 2000)
			return sim.TotalEnergy().Total()
		}
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(100*(with-without)/with, "repeater_share_pct")
		}
	}
}

// BenchmarkAblationCouplingDepth sweeps the coupling truncation distance
// and reports the energy recovered at each depth relative to the full
// model (the Fig. 3 "Self"/"NN"/"All" axis as an ablation).
func BenchmarkAblationCouplingDepth(b *testing.B) {
	depths := []int{0, 1, 2, 3, -1}
	for i := 0; i < b.N; i++ {
		energies := make([]float64, len(depths))
		for k, d := range depths {
			sim, err := core.New(core.Config{
				Node: itrs.N130, CouplingDepth: d, DropSamples: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Random words exercise every pair distance (the alternating
			// pattern has zero distance-2 coupling by symmetry).
			w := uint32(0xC0FFEE)
			for c := 0; c < 2000; c++ {
				w = w*1664525 + 1013904223
				sim.StepWord(w)
			}
			sim.Finish()
			energies[k] = sim.TotalEnergy().Total()
		}
		if i == 0 {
			full := energies[len(energies)-1]
			b.ReportMetric(100*energies[0]/full, "self_only_pct")
			b.ReportMetric(100*energies[1]/full, "nn_pct")
			b.ReportMetric(100*energies[2]/full, "dist2_pct")
		}
	}
}

// BenchmarkAblationIntegrator compares the paper's fixed-step RK4 against
// adaptive RK45 and explicit Euler on one thermal interval, reporting each
// one's error against a tight-tolerance reference.
func BenchmarkAblationIntegrator(b *testing.B) {
	nw, err := thermal.NewFromNode(itrs.N130, 32, thermal.NodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 32)
	for i := range p {
		p[i] = 5
	}
	// Prime the network's power input, then integrate copies of the state
	// with each method.
	if err := nw.Advance(1e-9, p); err != nil {
		b.Fatal(err)
	}
	dt := 100_000 / itrs.N130.ClockHz
	start := nw.Temps(nil)

	reference := append([]float64(nil), start...)
	if _, err := ode.NewRK45(1e-12, 1e-14).Integrate(nw, 0, dt, reference); err != nil {
		b.Fatal(err)
	}
	maxErr := func(y []float64) float64 {
		m := 0.0
		for i := range y {
			if d := math.Abs(y[i] - reference[i]); d > m {
				m = d
			}
		}
		return m
	}
	for i := 0; i < b.N; i++ {
		rk4 := append([]float64(nil), start...)
		if _, err := ode.NewRK4(dt/16).Integrate(nw, 0, dt, rk4); err != nil {
			b.Fatal(err)
		}
		euler := append([]float64(nil), start...)
		if _, err := ode.NewEuler(dt/16).Integrate(nw, 0, dt, euler); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(maxErr(rk4)*1e9, "rk4_err_nK")
			b.ReportMetric(maxErr(euler)*1e9, "euler_err_nK")
		}
	}
}

// BenchmarkAblationDielectricHeatMass contrasts the strict wire-only heat
// capacity (the paper's literal Ci = Cs*t*w) against the calibrated
// dielectric heat mass, reporting the thermal time constants. The paper's
// own Figs. 4-5 imply the slower constant; see DESIGN.md §5.
func BenchmarkAblationDielectricHeatMass(b *testing.B) {
	g := thermal.NodeGeometry(itrs.N130)
	rv, err := g.VerticalResistance()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		wireOnly := g.HeatCapacity(thermal.HeatCapacityOptions{})
		withDiel := g.HeatCapacity(thermal.HeatCapacityOptions{
			ExtraDielectricArea: thermal.DefaultExtraDielectricArea,
		})
		if i == 0 {
			b.ReportMetric(rv*wireOnly*1e6, "tau_wire_only_us")
			b.ReportMetric(rv*withDiel*1e3, "tau_with_diel_ms")
		}
	}
}

package nanobus_test

import (
	"fmt"

	"nanobus"
)

// Example shows the minimal bus-modeling flow: drive addresses, read the
// energy split.
func Example() {
	sim, err := nanobus.NewBus(nanobus.BusConfig{
		Node:          nanobus.Node130,
		CouplingDepth: -1,
	})
	if err != nil {
		panic(err)
	}
	sim.StepWord(0x0000_1000)
	sim.StepWord(0x0000_1004) // sequential: one line switches
	sim.StepWord(0x7FFE_0000) // far jump: many lines switch
	sim.Finish()

	tot := sim.TotalEnergy()
	fmt.Printf("width %d wires, coupling share %.0f%%\n",
		sim.Width(), 100*(tot.CoupAdj+tot.CoupNonAdj)/tot.Total())
	// Output: width 32 wires, coupling share 18%
}

// ExampleNewEncoder demonstrates an encode/decode round trip.
func ExampleNewEncoder() {
	enc, _ := nanobus.NewEncoder("BI")
	dec, _ := nanobus.NewDecoder("BI")
	phys := enc.Encode(0xFFFF0000)
	fmt.Printf("%#x -> %#x\n", 0xFFFF0000, dec.Decode(phys))
	// Output: 0xffff0000 -> 0xffff0000
}

// ExamplePlanRepeaters shows the paper's Eq. 1-2 repeater plan for a 10 mm
// 130 nm global line.
func ExamplePlanRepeaters() {
	plan, _ := nanobus.PlanRepeaters(nanobus.Node130, 0.01)
	fmt.Printf("k=%.1f repeaters of size %.0fx, Crep/Cint=%.2f\n",
		plan.CountK, plan.SizeH, plan.Crep/(nanobus.Node130.CTotal()*0.01))
	// Output: k=8.2 repeaters of size 105x, Crep/Cint=0.76
}

// ExampleInterLayerRise evaluates Eq. 7 for the paper's nodes.
func ExampleInterLayerRise() {
	for _, n := range nanobus.Nodes()[:2] {
		fmt.Printf("%s: %.1f K\n", n.Name, nanobus.InterLayerRise(n))
	}
	// Output:
	// 130nm: 12.8 K
	// 90nm: 64.2 K
}

// ExampleNewThermalNetwork solves a steady state analytically.
func ExampleNewThermalNetwork() {
	net, _ := nanobus.NewThermalNetwork(nanobus.Node130, 3, nanobus.ThermalOptions{
		DisableInterLayer: true,
	})
	ss, _ := net.SteadyState([]float64{0, 10, 0})
	fmt.Printf("hot wire rise: %.2f K, neighbour rise: %.2f K\n",
		ss[1]-net.Ambient(), ss[0]-net.Ambient())
	// Output: hot wire rise: 8.16 K, neighbour rise: 5.73 K
}
